"""Observed-history recording and anomaly classification (HISTEX-style).

The exerciser (:mod:`repro.isolation.exerciser`) drives seeded multi-client
interleavings against a live cluster and records every operation it issues
into a :class:`History`: who did it, what it was, when it started and
finished, and what value came back.  The functions here classify those
histories after the fact — the checker never touches the cluster, so the
same classification runs identically over a recorded history regardless of
which scheduler produced it.

Anomalies are defined at the *replication* level, where the middleware
schedulers actually differ (each in-memory backend already runs strict
two-phase locking internally):

* a **dirty read** is a read that returned a write's new value before that
  write was acknowledged on every replica;
* a **non-repeatable read** shows up as a *backward transition*: one client
  reads the new value, then reads the old one again because its next read
  landed on a replica the write had not reached yet;
* a **lost update** is detected structurally (replica digests diverge after
  two updates applied in different orders), so it needs no history check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class HistoryEvent:
    """One operation observed during an interleaving."""

    client: str
    kind: str                 # read | write | begin | commit | rollback | error
    started: float            # monotonic seconds
    finished: float
    table: Optional[str] = None
    key: Optional[object] = None
    value: Optional[object] = None
    details: Dict[str, object] = field(default_factory=dict)


class History:
    """Thread-safe recorder for the events of one interleaving."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events: List[HistoryEvent] = []

    def add(
        self,
        client: str,
        kind: str,
        started: float,
        finished: float,
        table: Optional[str] = None,
        key: Optional[object] = None,
        value: Optional[object] = None,
        **details: object,
    ) -> HistoryEvent:
        event = HistoryEvent(
            client=client,
            kind=kind,
            started=started,
            finished=finished,
            table=table,
            key=key,
            value=value,
            details=dict(details),
        )
        with self._lock:
            self._events.append(event)
        return event

    @property
    def events(self) -> List[HistoryEvent]:
        """Events sorted by start time (stable for identical timestamps)."""
        with self._lock:
            return sorted(self._events, key=lambda event: event.started)

    def reads(
        self, table: Optional[str] = None, key: Optional[object] = None
    ) -> List[HistoryEvent]:
        return [
            event
            for event in self.events
            if event.kind == "read"
            and (table is None or event.table == table)
            and (key is None or event.key == key)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


def dirty_reads(
    history: History,
    table: str,
    key: object,
    value: object,
    acked_at: float,
    margin: float,
) -> List[HistoryEvent]:
    """Reads that returned ``value`` well before the write of it was acked.

    ``margin`` guards the classification against clock skew between the
    reader recording its finish time and the writer recording the ack: only
    reads that finished more than ``margin`` seconds before the ack count.
    """
    return [
        event
        for event in history.reads(table, key)
        if event.value == value and event.finished < acked_at - margin
    ]


def backward_transitions(
    history: History,
    client: str,
    table: str,
    key: object,
    ranks: Mapping[object, int],
) -> int:
    """Consecutive read pairs by one client where the value went *backward*.

    ``ranks`` orders the values in time (old value rank 0, new value rank
    1); a client that reads the new value and then the old one again has
    observed a non-repeatable read at the replication level.
    """
    reads = [
        event
        for event in history.reads(table, key)
        if event.client == client and event.value in ranks
    ]
    return sum(
        1
        for previous, current in zip(reads, reads[1:])
        if ranks[current.value] < ranks[previous.value]
    )


def cell(status: str, mechanism: Optional[str] = None, **details: object) -> dict:
    """One scheduler×anomaly matrix cell: observed/prevented plus evidence."""
    if status not in ("observed", "prevented"):
        raise ValueError(f"unknown cell status {status!r}")
    result: Dict[str, object] = {"status": status}
    if mechanism is not None:
        result["mechanism"] = mechanism
    result.update(details)
    return result


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def format_isolation_matrix(matrix: Mapping[str, object]) -> str:
    """Render the scheduler×anomaly matrix as an aligned text table."""
    schedulers: Mapping[str, Mapping[str, dict]] = matrix["schedulers"]
    anomalies: Sequence[str] = matrix.get("anomalies") or sorted(
        {anomaly for cells in schedulers.values() for anomaly in cells}
    )
    names = list(schedulers)
    anomaly_width = max([len("anomaly")] + [len(a) for a in anomalies])
    widths = {
        name: max(len(name), *(len(schedulers[name][a]["status"]) for a in anomalies))
        if anomalies
        else len(name)
        for name in names
    }
    header = f"{'anomaly':<{anomaly_width}}"
    for name in names:
        header += f"  {name:<{widths[name]}}"
    lines = [
        f"scheduler × anomaly matrix (seed {matrix.get('seed')})",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for anomaly in anomalies:
        line = f"{anomaly:<{anomaly_width}}"
        for name in names:
            status = schedulers[name][anomaly]["status"]
            line += f"  {status:<{widths[name]}}"
        lines.append(line)
    return "\n".join(lines)


__all__ = [
    "History",
    "HistoryEvent",
    "backward_transitions",
    "cell",
    "dirty_reads",
    "format_isolation_matrix",
]
