"""HISTEX-style isolation exerciser: seeded interleavings against live clusters.

Each probe boots a disposable two-backend RAIDb-1 cluster with a chosen
scheduler, drives a small seeded multi-client interleaving designed to
surface one anomaly, records what every client observed into a
:class:`~repro.isolation.checker.History`, and classifies the outcome as a
matrix cell (``observed`` / ``prevented`` plus the mechanism and evidence).

The anomalies are framed at the **replication** level, because that is
where the middleware schedulers differ — each in-memory backend already
runs strict two-phase locking internally, so a single replica never shows
the textbook single-node races.  What the schedulers control is whether
clients can observe *half-propagated* or *divergently ordered* writes
across replicas:

* ``dirty_read`` — a read returns a write's new value from the replica it
  already reached, before the write is acknowledged everywhere;
* ``non_repeatable_read`` — consecutive reads by one client go new→old
  because round-robin routing lands them on a replica the write has not
  reached yet;
* ``lost_update`` — two racing updates to the same row apply in different
  orders on different replicas, so one replica keeps the overwritten value;
* ``ww_conflict`` — a transaction writes a table another transaction
  committed after its snapshot; only the MVCC scheduler aborts the loser
  (first committer wins), everyone else silently overwrites;
* ``write_skew`` — two transactions read an invariant and write disjoint
  tables; admitted by every scheduler (documented, not hidden: statement
  schedulers order statements, and scheduler-level snapshot validation
  only sees write sets);
* ``read_blocking`` — not a data anomaly but the price axis: whether the
  scheduler makes readers wait during a write storm.

The replicas are never *left* divergent except by the passthrough
scheduler — which is the point the matrix demonstrates.
"""

from __future__ import annotations

import itertools
import threading
import time
from random import Random
from typing import Dict, List, Optional, Sequence

from repro.bench.chaos import digest_mismatches
from repro.cluster import Cluster
from repro.cluster.registry import ControllerRegistry
from repro.core import BackendConfig, VirtualDatabaseConfig
from repro.core.scheduler import canonical_scheduler_name
from repro.errors import CJDBCError, SerializationConflictError
from repro.isolation.checker import History, backward_transitions, cell, dirty_reads
from repro.sql import DatabaseEngine

#: distinguishes exerciser controller names across probes and test sessions
_LABELS = itertools.count(1)

#: the scheduler variants the matrix compares
ISOLATION_SCHEDULERS = ("passthrough", "optimistic", "pessimistic", "table_lock", "mvcc")

#: a client-side read slower than this during a probe counts as blocked —
#: an unblocked in-memory read is microseconds, a read parked behind a
#: scheduler write ticket waits the whole broadcast (tens of milliseconds)
_BLOCKED_READ_SECONDS = 0.010


class _IsolationCluster:
    """One disposable 2-backend RAIDb-1 cluster with the exerciser schema.

    Round-robin read routing is load-bearing: the anomaly probes rely on
    consecutive reads alternating between the replica a latency-delayed
    write has already reached and the one it has not.
    """

    def __init__(self, scheduler="optimistic", backends: int = 2, clients: int = 3):
        label = f"iso{next(_LABELS)}"
        self.engines: Dict[str, DatabaseEngine] = {
            f"b{i}": DatabaseEngine(f"{label}-b{i}", lock_timeout=2.0)
            for i in range(backends)
        }
        config = VirtualDatabaseConfig(
            name=label,
            backends=[
                BackendConfig(name=name, engine=engine)
                for name, engine in self.engines.items()
            ],
            replication="raidb1",
            load_balancing_policy="rr",
            wait_for_completion="all",
            scheduler=scheduler,
            recovery_log="memory",
        )
        self.cluster = Cluster.from_configs(
            config, controller_name=label, registry=ControllerRegistry()
        )
        self.vdb = self.cluster.virtual_database(label)
        self.manager = self.vdb.request_manager
        self.clients = clients
        execute = self.manager.execute
        execute("CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(40))")
        for key in range(8):
            execute("INSERT INTO kv (k, v) VALUES (?, ?)", (key, f"seed-{key}"))
        execute("CREATE TABLE meta (k INT PRIMARY KEY, v VARCHAR(40))")
        execute("INSERT INTO meta (k, v) VALUES (?, ?)", (1, "meta"))
        for account in ("acct_a", "acct_b"):
            execute(f"CREATE TABLE {account} (id INT PRIMARY KEY, balance INT)")
            execute(f"INSERT INTO {account} (id, balance) VALUES (?, ?)", (1, 60))
        # one private table per mix client, so transactional writes never
        # collide on backend-level row locks across clients
        for index in range(clients):
            execute(f"CREATE TABLE c{index} (k INT PRIMARY KEY, v VARCHAR(40))")

    def injector(self, backend_name: str, seed: int = 0):
        return self.vdb.fault_injector(backend_name, seed=seed)

    def read_kv(self, key: int):
        result = self.manager.execute("SELECT v FROM kv WHERE k = ?", (key,))
        return result.rows[0][0] if result.rows else None

    def kv_values(self, key: int) -> Dict[str, object]:
        """The value of one kv row on each replica, read from the engines."""
        values: Dict[str, object] = {}
        for name, engine in self.engines.items():
            rows = [row for row in engine.dump_table_rows("kv") if row["k"] == key]
            values[name] = rows[0]["v"] if rows else None
        return values

    def scheduler_read_wait(self) -> dict:
        return self.manager.scheduler.statistics()["read_wait"]

    def shutdown(self) -> None:
        self.cluster.shutdown()


# ---------------------------------------------------------------------------
# probes — each returns one matrix cell
# ---------------------------------------------------------------------------


def probe_dirty_read(iso: _IsolationCluster, seed: int, scale: float) -> dict:
    """One write delayed on b0; do reads see its value before the ack?"""
    window = max(0.12 * scale, 0.06)
    iso.injector("b0", seed).inject(
        "latency", latency_ms=window * 1000, match_sql="UPDATE kv", operations=("execute",)
    )
    history = History()
    acked_at: List[float] = []

    def writer() -> None:
        iso.manager.execute("UPDATE kv SET v = ? WHERE k = ?", ("dirty-new", 0))
        acked_at.append(time.monotonic())

    thread = threading.Thread(target=writer)
    thread.start()
    while thread.is_alive():
        started = time.monotonic()
        value = iso.read_kv(0)
        history.add("reader", "read", started, time.monotonic(), table="kv", key=0, value=value)
        time.sleep(0.001)
    thread.join()
    dirty = dirty_reads(
        history, "kv", 0, "dirty-new", acked_at=acked_at[0], margin=window / 4
    )
    read_wait = iso.scheduler_read_wait()
    if dirty:
        return cell(
            "observed",
            mechanism="read returned the new value before the write was acked everywhere",
            dirty_reads=len(dirty),
            reads_issued=len(history),
        )
    return cell(
        "prevented",
        mechanism="readers blocked behind the in-flight write"
        if read_wait["count"]
        else "window not observed",
        reads_issued=len(history),
        blocked_reads=read_wait["count"],
    )


def probe_non_repeatable_read(iso: _IsolationCluster, seed: int, scale: float) -> dict:
    """Do round-robin reads go new→old while a write is half-propagated?"""
    iso.manager.execute("UPDATE kv SET v = ? WHERE k = ?", ("nrr-old", 1))
    window = max(0.12 * scale, 0.06)
    iso.injector("b0", seed).inject(
        "latency", latency_ms=window * 1000, match_sql="nrr-new", operations=("execute",)
    )
    history = History()

    def writer() -> None:
        iso.manager.execute("UPDATE kv SET v = 'nrr-new' WHERE k = 1")

    thread = threading.Thread(target=writer)
    thread.start()
    while thread.is_alive():
        # a burst of consecutive reads covers both replicas under rr routing
        for _ in range(4):
            started = time.monotonic()
            value = iso.read_kv(1)
            history.add(
                "reader", "read", started, time.monotonic(), table="kv", key=1, value=value
            )
        time.sleep(0.001)
    thread.join()
    backwards = backward_transitions(
        history, "reader", "kv", 1, {"nrr-old": 0, "nrr-new": 1}
    )
    read_wait = iso.scheduler_read_wait()
    if backwards:
        return cell(
            "observed",
            mechanism="consecutive reads went new→old across replicas",
            backward_transitions=backwards,
            reads_issued=len(history),
        )
    return cell(
        "prevented",
        mechanism="readers blocked behind the in-flight write"
        if read_wait["count"]
        else "window not observed",
        reads_issued=len(history),
        blocked_reads=read_wait["count"],
    )


def probe_lost_update(iso: _IsolationCluster, seed: int, scale: float) -> dict:
    """Two racing updates of one row: do the replicas apply them in order?"""
    window = max(0.3 * scale, 0.2)
    iso.injector("b1", seed).inject(
        "latency", latency_ms=window * 1000, match_sql="w1-lost", operations=("execute",)
    )

    def first_writer() -> None:
        iso.manager.execute("UPDATE kv SET v = 'w1-lost' WHERE k = 2")

    thread = threading.Thread(target=first_writer)
    thread.start()
    # wait until W1 has reached b0 (it is still sleeping towards b1) ...
    deadline = time.monotonic() + window / 2
    while time.monotonic() < deadline:
        if iso.kv_values(2)["b0"] == "w1-lost":
            break
        time.sleep(0.002)
    # ... then race W2 into the remaining window
    iso.manager.execute("UPDATE kv SET v = ? WHERE k = ?", ("w2-lost", 2))
    thread.join()
    values = iso.kv_values(2)
    diverged = len(set(values.values())) > 1
    if diverged:
        return cell(
            "observed",
            mechanism="replicas applied the two updates in different orders",
            replica_values=values,
        )
    return cell(
        "prevented",
        mechanism="total write order held the second update back",
        replica_values=values,
    )


def probe_ww_conflict(iso: _IsolationCluster, seed: int, scale: float) -> dict:
    """First-committer-wins: is a snapshot-stale write aborted or let through?"""
    manager = iso.manager
    t1 = manager.begin("iso")
    t2 = manager.begin("iso")
    # t2's snapshot is stamped by its first scheduled statement — this read
    # on an unrelated table, taken before t1 commits
    manager.execute("SELECT v FROM meta WHERE k = ?", (1,), transaction_id=t2)
    manager.execute(
        "UPDATE kv SET v = ? WHERE k = ?", ("t1-wins", 3), transaction_id=t1
    )
    manager.commit(t1, "iso")
    try:
        manager.execute(
            "UPDATE kv SET v = ? WHERE k = ?", ("t2-loses", 3), transaction_id=t2
        )
        manager.commit(t2, "iso")
        detected = False
    except SerializationConflictError:
        manager.rollback(t2, "iso")
        detected = True
    values = iso.kv_values(3)
    stats = manager.scheduler.statistics()
    if detected:
        return cell(
            "prevented",
            mechanism="first committer wins: the stale transaction was aborted"
            " before its write reached any backend",
            conflicts_detected=stats.get("mvcc", {}).get("conflicts_detected", 0),
            replica_values=values,
        )
    return cell(
        "observed",
        mechanism="the second transaction silently overwrote the first commit",
        replica_values=values,
    )


def probe_write_skew(iso: _IsolationCluster, seed: int, scale: float) -> dict:
    """Disjoint write sets under a shared invariant: admitted everywhere."""
    manager = iso.manager

    def balances(transaction_id: int) -> Dict[str, int]:
        return {
            account: manager.execute(
                f"SELECT balance FROM {account} WHERE id = ?",
                (1,),
                transaction_id=transaction_id,
            ).rows[0][0]
            for account in ("acct_a", "acct_b")
        }

    t1 = manager.begin("iso")
    t2 = manager.begin("iso")
    seen1 = balances(t1)
    seen2 = balances(t2)
    # each transaction withdraws 100, justified by the *sum* it read (120)
    manager.execute(
        "UPDATE acct_a SET balance = ? WHERE id = ?",
        (seen1["acct_a"] - 100, 1),
        transaction_id=t1,
    )
    manager.commit(t1, "iso")
    manager.execute(
        "UPDATE acct_b SET balance = ? WHERE id = ?",
        (seen2["acct_b"] - 100, 1),
        transaction_id=t2,
    )
    manager.commit(t2, "iso")
    total = sum(
        manager.execute(f"SELECT balance FROM {account} WHERE id = ?", (1,)).rows[0][0]
        for account in ("acct_a", "acct_b")
    )
    if total < 0:
        return cell(
            "observed",
            mechanism="disjoint write sets: both commits were admitted although"
            " together they break the invariant the reads justified",
            final_total=total,
        )
    return cell("prevented", final_total=total)  # pragma: no cover - none prevents it


def probe_read_blocking(iso: _IsolationCluster, seed: int, scale: float) -> dict:
    """Do readers wait during a write storm?  Split by same/other table."""
    per_write = 0.015
    iso.injector("b0", seed).inject(
        "latency", latency_ms=per_write * 1000, match_sql="UPDATE kv", operations=("execute",)
    )
    writes = max(int(10 * scale), 5)

    def writer() -> None:
        for index in range(writes):
            iso.manager.execute(
                "UPDATE kv SET v = ? WHERE k = ?", (f"storm-{index}", 4)
            )

    slow: Dict[str, int] = {"kv": 0, "meta": 0}
    reads = 0
    thread = threading.Thread(target=writer)
    thread.start()
    while thread.is_alive():
        for table, sql in (
            ("kv", "SELECT v FROM kv WHERE k = ?"),
            ("meta", "SELECT v FROM meta WHERE k = ?"),
        ):
            started = time.monotonic()
            iso.manager.execute(sql, (4 if table == "kv" else 1,))
            if time.monotonic() - started >= _BLOCKED_READ_SECONDS:
                slow[table] += 1
            reads += 1
        time.sleep(0.002)
    thread.join()
    blocked = slow["kv"] + slow["meta"]
    details = {
        "reads_issued": reads,
        "blocked_reads": blocked,
        "same_table_blocked": slow["kv"],
        "other_table_blocked": slow["meta"],
        "scheduler_read_wait": iso.scheduler_read_wait(),
    }
    if blocked:
        mechanism = (
            "blocked reads were confined to the written table"
            if slow["meta"] == 0
            else "reads on unrelated tables waited too"
        )
        return cell("observed", mechanism=mechanism, **details)
    return cell("prevented", mechanism="reads never wait for writes", **details)


#: anomaly name -> probe(iso, seed, scale) -> matrix cell
PROBES = {
    "dirty_read": probe_dirty_read,
    "non_repeatable_read": probe_non_repeatable_read,
    "lost_update": probe_lost_update,
    "ww_conflict": probe_ww_conflict,
    "write_skew": probe_write_skew,
    "read_blocking": probe_read_blocking,
}

ANOMALIES = tuple(PROBES)


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------


def run_isolation_probe(
    scheduler: str, anomaly: str, seed: int = 7, scale: float = 1.0
) -> dict:
    """Run one probe against a fresh cluster with the given scheduler."""
    probe = PROBES.get(anomaly)
    if probe is None:
        known = ", ".join(ANOMALIES)
        raise CJDBCError(f"unknown isolation probe {anomaly!r} (probes: {known})")
    iso = _IsolationCluster(scheduler=canonical_scheduler_name(scheduler))
    try:
        return probe(iso, seed, scale)
    finally:
        iso.shutdown()


def run_isolation_matrix(
    schedulers: Optional[Sequence[str]] = None, seed: int = 7, scale: float = 1.0
) -> dict:
    """The scheduler×anomaly matrix: every probe against every scheduler."""
    selected = [
        canonical_scheduler_name(name)
        for name in (schedulers if schedulers else ISOLATION_SCHEDULERS)
    ]
    return {
        "version": 1,
        "seed": seed,
        "scale": scale,
        "anomalies": list(ANOMALIES),
        "schedulers": {
            name: {
                anomaly: run_isolation_probe(name, anomaly, seed=seed, scale=scale)
                for anomaly in ANOMALIES
            }
            for name in selected
        },
    }


def run_random_mix(
    scheduler: str, seed: int = 7, scale: float = 1.0, clients: int = 3
) -> dict:
    """A seeded multi-client read/write/transaction mix; reports convergence.

    Unlike the targeted probes this injects no faults: whatever divergence
    shows up comes purely from the scheduler (or lack of one) letting
    concurrent same-row updates apply in different orders on different
    replicas.  Serialization conflicts under the MVCC scheduler are rolled
    back and counted, not treated as client errors.
    """
    iso = _IsolationCluster(scheduler=canonical_scheduler_name(scheduler), clients=clients)
    try:
        ops_per_client = max(int(30 * scale), 10)
        errors = [0] * clients
        aborts = [0] * clients

        def client(index: int) -> None:
            rng = Random(seed * 1000 + index)
            manager = iso.manager
            for op in range(ops_per_client):
                roll = rng.random()
                try:
                    if roll < 0.5:
                        manager.execute(
                            "SELECT v FROM kv WHERE k = ?", (rng.randrange(8),)
                        )
                    elif roll < 0.8:
                        manager.execute(
                            "UPDATE kv SET v = ? WHERE k = ?",
                            (f"c{index}-{op}", rng.randrange(8)),
                        )
                    else:
                        tid = manager.begin(f"c{index}")
                        try:
                            manager.execute(
                                f"INSERT INTO c{index} (k, v) VALUES (?, ?)",
                                (op, f"v{op}"),
                                transaction_id=tid,
                            )
                            manager.execute(
                                f"UPDATE c{index} SET v = ? WHERE k = ?",
                                (f"v{op}+", op),
                                transaction_id=tid,
                            )
                            manager.commit(tid, f"c{index}")
                        except SerializationConflictError:
                            aborts[index] += 1
                            manager.rollback(tid, f"c{index}")
                except SerializationConflictError:
                    aborts[index] += 1
                except CJDBCError:
                    errors[index] += 1

        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return {
            "scheduler": canonical_scheduler_name(scheduler),
            "clients": clients,
            "operations": ops_per_client * clients,
            "client_errors": sum(errors),
            "serialization_aborts": sum(aborts),
            "divergences": digest_mismatches(iso.engines),
            "scheduler_statistics": iso.manager.scheduler.statistics(),
        }
    finally:
        iso.shutdown()


__all__ = [
    "ANOMALIES",
    "ISOLATION_SCHEDULERS",
    "PROBES",
    "run_isolation_matrix",
    "run_isolation_probe",
    "run_random_mix",
]
