"""Statement profiles: the workload representation used by the simulator.

A *statement profile* describes one SQL statement abstractly: whether it is
a read or a write, which tables it touches, and its cost class (the service
time bucket used by the performance model).  An *interaction profile* is the
ordered list of statements one benchmark interaction issues, plus whether
the interaction runs in a transaction.

Keeping this small abstract representation separate from the concrete SQL
lets the same workload drive both the functional middleware (real SQL on
real backends) and the discrete-event cluster model (service times only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Sequence, Tuple


class StatementClass(Enum):
    """Cost buckets for the performance model."""

    #: primary-key or small index lookup
    READ_SIMPLE = "read_simple"
    #: multi-row scan / join / search
    READ_COMPLEX = "read_complex"
    #: the TPC-W best-seller query: requires creating, filling and dropping a
    #: temporary table on the executing backend(s), then a select on one
    READ_BESTSELLER = "read_bestseller"
    #: single-row insert/update/delete
    WRITE_SIMPLE = "write_simple"
    #: multi-row update (cart flush, stock updates at buy confirm)
    WRITE_COMPLEX = "write_complex"

    @property
    def is_read(self) -> bool:
        return self in (
            StatementClass.READ_SIMPLE,
            StatementClass.READ_COMPLEX,
            StatementClass.READ_BESTSELLER,
        )

    @property
    def is_write(self) -> bool:
        return not self.is_read


@dataclass(frozen=True)
class StatementProfile:
    """One abstract SQL statement."""

    statement_class: StatementClass
    tables: Tuple[str, ...] = ()
    #: relative weight multiplying the base cost of the class (e.g. a search
    #: over a bigger table can cost 2x a standard complex read)
    cost_factor: float = 1.0

    @property
    def is_read(self) -> bool:
        return self.statement_class.is_read


@dataclass(frozen=True)
class InteractionProfile:
    """One benchmark interaction: a named, ordered list of statements."""

    name: str
    statements: Tuple[StatementProfile, ...]
    #: True when the statements run inside one transaction (begin/commit)
    transactional: bool = False
    #: read-only interactions never issue a write statement
    read_only: bool = field(default=False)

    def __post_init__(self):
        computed_read_only = all(statement.is_read for statement in self.statements)
        object.__setattr__(self, "read_only", computed_read_only)

    @property
    def read_statements(self) -> int:
        return sum(1 for statement in self.statements if statement.is_read)

    @property
    def write_statements(self) -> int:
        return len(self.statements) - self.read_statements


def read_write_statement_ratio(
    interactions: Sequence[Tuple[InteractionProfile, float]]
) -> Tuple[float, float]:
    """Weighted (reads, writes) statement fractions of a mix.

    ``interactions`` is a list of (interaction, probability) pairs; the
    result is normalised to sum to 1.0 and is used by tests to check that the
    mixes reproduce the read-only ratios quoted in the paper.
    """
    reads = 0.0
    writes = 0.0
    for interaction, probability in interactions:
        reads += probability * interaction.read_statements
        writes += probability * interaction.write_statements
    total = reads + writes
    if total == 0:
        return 0.0, 0.0
    return reads / total, writes / total
