"""Workload generators: TPC-W and RUBiS.

Each workload provides three things:

* a schema + data generator that can populate any DB-API connection
  (used to load the virtual database or the individual backends);
* the benchmark interactions expressed as SQL transaction templates that run
  against a DB-API connection (functional execution, used by examples and
  integration tests);
* a *statement profile* per interaction (statement class + tables touched)
  consumed by the discrete-event performance model in
  :mod:`repro.simulation`, which is what regenerates the paper's figures.
"""

from repro.workloads.profile import InteractionProfile, StatementClass, StatementProfile

__all__ = ["InteractionProfile", "StatementClass", "StatementProfile"]
