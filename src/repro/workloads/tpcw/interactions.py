"""The 14 TPC-W web interactions.

Each interaction exists in two forms:

* a *statement profile* (:class:`repro.workloads.profile.InteractionProfile`)
  used by the discrete-event performance model — this is what regenerates
  Figures 10-12;
* an *executable* form: a method of :class:`TPCWInteractions` that issues the
  interaction's SQL against a DB-API connection (direct backend connection
  or a C-JDBC virtual database connection), used by the examples and the
  integration tests.

Six interactions are read-only (Home, New Products, Best Sellers, Product
Detail, Search Request, Search Results) and eight contain updates (Shopping
Cart, Customer Registration, Buy Request, Buy Confirm, Order Inquiry*,
Order Display*, Admin Request*, Admin Confirm) — the paper counts Order
Inquiry/Display and Admin Request among the eight because they belong to the
ordering path of the specification; their SQL footprint here follows the
Wisconsin servlet implementation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.workloads.profile import InteractionProfile, StatementClass, StatementProfile

# ---------------------------------------------------------------------------
# Statement profiles (simulator view)
# ---------------------------------------------------------------------------

_S = StatementProfile
_C = StatementClass

INTERACTIONS: Dict[str, InteractionProfile] = {
    "home": InteractionProfile(
        "home",
        (
            _S(_C.READ_SIMPLE, ("customer",)),
            _S(_C.READ_COMPLEX, ("item",)),  # promotional items
        ),
    ),
    "new_products": InteractionProfile(
        "new_products",
        (_S(_C.READ_COMPLEX, ("item", "author"), cost_factor=1.5),),
    ),
    "best_sellers": InteractionProfile(
        "best_sellers",
        (
            # The MySQL implementation creates a temporary table, selects the
            # 3333 most recent orders into it, reads the top 50 and drops it
            # (paper §6.3 explains the resulting sub-linear speedup).
            _S(_C.READ_BESTSELLER, ("order_line", "item", "author")),
        ),
    ),
    "product_detail": InteractionProfile(
        "product_detail",
        (_S(_C.READ_SIMPLE, ("item", "author")),),
    ),
    "search_request": InteractionProfile(
        "search_request",
        (_S(_C.READ_SIMPLE, ("item",)),),
    ),
    "search_results": InteractionProfile(
        "search_results",
        (_S(_C.READ_COMPLEX, ("item", "author"), cost_factor=2.0),),
    ),
    "shopping_cart": InteractionProfile(
        "shopping_cart",
        (
            _S(_C.READ_SIMPLE, ("shopping_cart",)),
            _S(_C.WRITE_SIMPLE, ("shopping_cart",)),
            _S(_C.WRITE_SIMPLE, ("shopping_cart_line",)),
            _S(_C.READ_SIMPLE, ("shopping_cart_line", "item")),
        ),
        transactional=True,
    ),
    "customer_registration": InteractionProfile(
        "customer_registration",
        (
            _S(_C.READ_SIMPLE, ("customer",)),
            _S(_C.WRITE_SIMPLE, ("customer",)),
            _S(_C.WRITE_SIMPLE, ("address",)),
        ),
        transactional=True,
    ),
    "buy_request": InteractionProfile(
        "buy_request",
        (
            _S(_C.READ_SIMPLE, ("customer",)),
            _S(_C.READ_SIMPLE, ("shopping_cart_line", "item")),
            _S(_C.WRITE_SIMPLE, ("customer",)),
        ),
        transactional=True,
    ),
    "buy_confirm": InteractionProfile(
        "buy_confirm",
        (
            _S(_C.READ_SIMPLE, ("shopping_cart_line",)),
            _S(_C.WRITE_SIMPLE, ("orders",)),
            _S(_C.WRITE_COMPLEX, ("order_line",)),
            _S(_C.WRITE_COMPLEX, ("item",)),  # stock update
            _S(_C.WRITE_SIMPLE, ("cc_xacts",)),
            _S(_C.WRITE_SIMPLE, ("shopping_cart_line",)),  # empty the cart
        ),
        transactional=True,
    ),
    "order_inquiry": InteractionProfile(
        "order_inquiry",
        (_S(_C.READ_SIMPLE, ("customer",)),),
    ),
    "order_display": InteractionProfile(
        "order_display",
        (
            _S(_C.READ_SIMPLE, ("customer",)),
            _S(_C.READ_COMPLEX, ("orders", "order_line", "item", "address", "country")),
        ),
    ),
    "admin_request": InteractionProfile(
        "admin_request",
        (_S(_C.READ_SIMPLE, ("item",)),),
    ),
    "admin_confirm": InteractionProfile(
        "admin_confirm",
        (
            _S(_C.READ_COMPLEX, ("order_line", "item")),  # recompute related items
            _S(_C.WRITE_COMPLEX, ("item",)),
        ),
        transactional=True,
    ),
}

#: the six read-only interactions of the specification
READ_ONLY_INTERACTIONS = (
    "home",
    "new_products",
    "best_sellers",
    "product_detail",
    "search_request",
    "search_results",
)


# ---------------------------------------------------------------------------
# Executable interactions (functional view)
# ---------------------------------------------------------------------------


class TPCWInteractions:
    """Run TPC-W interactions against a DB-API connection.

    ``items`` / ``customers`` must match the populated database so the
    random identifiers hit existing rows.
    """

    def __init__(self, connection, items: int, customers: int, seed: int = 7):
        self.connection = connection
        self.items = items
        self.customers = customers
        self.random = random.Random(seed)
        self._cart_counter = 0

    # -- helpers --------------------------------------------------------------------

    def _cursor(self):
        return self.connection.cursor()

    def _item_id(self) -> int:
        return self.random.randint(1, self.items)

    def _customer_id(self) -> int:
        return self.random.randint(1, self.customers)

    def run(self, name: str) -> int:
        """Run one interaction by name; returns the number of SQL statements."""
        method = getattr(self, name)
        return method()

    # -- read-only interactions --------------------------------------------------------

    def home(self) -> int:
        cursor = self._cursor()
        cursor.execute(
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?", (self._customer_id(),)
        )
        cursor.fetchall()
        cursor.execute(
            "SELECT i_id, i_title, i_thumbnail FROM item WHERE i_subject = ? LIMIT 5",
            (self.random.choice(_SUBJECT_SAMPLE),),
        )
        cursor.fetchall()
        return 2

    def new_products(self) -> int:
        cursor = self._cursor()
        cursor.execute(
            "SELECT i_id, i_title, a_fname, a_lname FROM item, author"
            " WHERE i_a_id = a_id AND i_subject = ?"
            " ORDER BY i_pub_date DESC, i_title LIMIT 50",
            (self.random.choice(_SUBJECT_SAMPLE),),
        )
        cursor.fetchall()
        return 1

    def best_sellers(self) -> int:
        """The best-seller interaction: temp table + top-50 select + drop."""
        cursor = self._cursor()
        suffix = self.random.randint(1, 10 ** 9)
        temp_table = f"tpcw_bestseller_{suffix}"
        cursor.execute(
            f"CREATE TABLE {temp_table} (ol_i_id INT, ol_qty INT)"
        )
        cursor.execute(
            f"INSERT INTO {temp_table} (ol_i_id, ol_qty)"
            " SELECT ol_i_id, ol_qty FROM order_line"
        )
        cursor.execute(
            f"SELECT i_id, i_title, SUM(ol_qty) AS total_sold"
            f" FROM {temp_table}, item WHERE ol_i_id = i_id"
            " GROUP BY i_id, i_title ORDER BY total_sold DESC LIMIT 50"
        )
        cursor.fetchall()
        cursor.execute(f"DROP TABLE {temp_table}")
        return 4

    def product_detail(self) -> int:
        cursor = self._cursor()
        cursor.execute(
            "SELECT i_id, i_title, i_cost, i_srp, a_fname, a_lname FROM item, author"
            " WHERE i_a_id = a_id AND i_id = ?",
            (self._item_id(),),
        )
        cursor.fetchall()
        return 1

    def search_request(self) -> int:
        cursor = self._cursor()
        cursor.execute("SELECT i_subject FROM item WHERE i_id = ?", (self._item_id(),))
        cursor.fetchall()
        return 1

    def search_results(self) -> int:
        cursor = self._cursor()
        kind = self.random.choice(("subject", "title", "author"))
        if kind == "subject":
            cursor.execute(
                "SELECT i_id, i_title FROM item WHERE i_subject = ? ORDER BY i_title LIMIT 50",
                (self.random.choice(_SUBJECT_SAMPLE),),
            )
        elif kind == "title":
            cursor.execute(
                "SELECT i_id, i_title FROM item WHERE i_title LIKE ? ORDER BY i_title LIMIT 50",
                (f"Book Title {self.random.randint(1, self.items)}%",),
            )
        else:
            cursor.execute(
                "SELECT i_id, i_title, a_lname FROM item, author"
                " WHERE i_a_id = a_id AND a_lname LIKE ? ORDER BY i_title LIMIT 50",
                (f"AuthorLast{self.random.randint(0, 99)}%",),
            )
        cursor.fetchall()
        return 1

    # -- read-write interactions ----------------------------------------------------------

    def shopping_cart(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = self._cursor()
        cursor.execute("INSERT INTO shopping_cart (sc_time) VALUES (NOW())")
        self._cart_counter += 1
        cursor.execute("SELECT MAX(sc_id) FROM shopping_cart")
        cart_id = cursor.fetchone()[0]
        cursor.execute(
            "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)",
            (cart_id, self._item_id(), self.random.randint(1, 5)),
        )
        cursor.execute(
            "SELECT scl_i_id, scl_qty, i_title, i_cost FROM shopping_cart_line, item"
            " WHERE scl_i_id = i_id AND scl_sc_id = ?",
            (cart_id,),
        )
        cursor.fetchall()
        connection.commit()
        return 4

    def customer_registration(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = self._cursor()
        cursor.execute(
            "SELECT c_id FROM customer WHERE c_uname = ?", (f"user{self._customer_id()}",)
        )
        cursor.fetchall()
        new_id = self.customers + self.random.randint(10 ** 6, 2 * 10 ** 6)
        cursor.execute(
            "INSERT INTO address (addr_id, addr_street1, addr_city, addr_zip, addr_co_id)"
            " VALUES (?, ?, ?, ?, ?)",
            (new_id, "1 New St", "NewCity", "00000", 1),
        )
        cursor.execute(
            "INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_addr_id,"
            " c_discount, c_balance, c_ytd_pmt) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (new_id, f"newuser{new_id}", "pw", "New", "Customer", new_id, 0.1, 0.0, 0.0),
        )
        connection.commit()
        return 3

    def buy_request(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = self._cursor()
        customer = self._customer_id()
        cursor.execute(
            "SELECT c_fname, c_lname, c_discount FROM customer WHERE c_id = ?", (customer,)
        )
        cursor.fetchall()
        cursor.execute(
            "SELECT scl_i_id, scl_qty FROM shopping_cart_line WHERE scl_sc_id = ?",
            (max(1, self._cart_counter),),
        )
        cursor.fetchall()
        cursor.execute(
            "UPDATE customer SET c_login = NOW(), c_expiration = NOW() WHERE c_id = ?",
            (customer,),
        )
        connection.commit()
        return 3

    def buy_confirm(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = self._cursor()
        customer = self._customer_id()
        item = self._item_id()
        quantity = self.random.randint(1, 5)
        cursor.execute(
            "SELECT scl_i_id, scl_qty FROM shopping_cart_line WHERE scl_sc_id = ?",
            (max(1, self._cart_counter),),
        )
        cursor.fetchall()
        cursor.execute(
            "INSERT INTO orders (o_c_id, o_date, o_sub_total, o_tax, o_total, o_ship_type,"
            " o_bill_addr_id, o_ship_addr_id, o_status)"
            " VALUES (?, NOW(), ?, ?, ?, ?, ?, ?, ?)",
            (customer, 100.0, 8.0, 108.0, "AIR", 1, 1, "PENDING"),
        )
        cursor.execute("SELECT MAX(o_id) FROM orders")
        order_id = cursor.fetchone()[0]
        cursor.execute(
            "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, ol_discount, ol_comments)"
            " VALUES (?, ?, ?, ?, ?)",
            (order_id, item, quantity, 0.0, ""),
        )
        cursor.execute(
            "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?", (quantity, item)
        )
        cursor.execute(
            "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_xact_amt, cx_co_id)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (order_id, "VISA", "4111111111111111", f"Name {customer}", 108.0, 1),
        )
        cursor.execute(
            "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?", (max(1, self._cart_counter),)
        )
        connection.commit()
        return 7

    def order_inquiry(self) -> int:
        cursor = self._cursor()
        cursor.execute(
            "SELECT c_id FROM customer WHERE c_uname = ? AND c_passwd = ?",
            (f"user{self._customer_id()}", "password"),
        )
        cursor.fetchall()
        return 1

    def order_display(self) -> int:
        cursor = self._cursor()
        customer = self._customer_id()
        cursor.execute("SELECT c_id FROM customer WHERE c_id = ?", (customer,))
        cursor.fetchall()
        cursor.execute(
            "SELECT o_id, o_date, o_total, ol_i_id, ol_qty, i_title"
            " FROM orders, order_line, item"
            " WHERE o_c_id = ? AND ol_o_id = o_id AND ol_i_id = i_id"
            " ORDER BY o_date DESC LIMIT 20",
            (customer,),
        )
        cursor.fetchall()
        return 2

    def admin_request(self) -> int:
        cursor = self._cursor()
        cursor.execute(
            "SELECT i_id, i_title, i_cost, i_image, i_thumbnail FROM item WHERE i_id = ?",
            (self._item_id(),),
        )
        cursor.fetchall()
        return 1

    def admin_confirm(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = self._cursor()
        item = self._item_id()
        cursor.execute(
            "SELECT ol_i_id, COUNT(*) AS n FROM order_line"
            " WHERE ol_i_id <> ? GROUP BY ol_i_id ORDER BY n DESC LIMIT 5",
            (item,),
        )
        related = [row[0] for row in cursor.fetchall()]
        while len(related) < 5:
            related.append(self._item_id())
        cursor.execute(
            "UPDATE item SET i_cost = ?, i_image = ?, i_thumbnail = ?, i_pub_date = CURRENT_DATE(),"
            " i_related1 = ?, i_related2 = ?, i_related3 = ?, i_related4 = ?, i_related5 = ?"
            " WHERE i_id = ?",
            (
                round(self.random.uniform(5, 90), 2),
                f"img/image_{item}.gif",
                f"img/thumb_{item}.gif",
                related[0], related[1], related[2], related[3], related[4],
                item,
            ),
        )
        connection.commit()
        return 2


_SUBJECT_SAMPLE = (
    "ARTS", "COMPUTERS", "COOKING", "HISTORY", "LITERATURE", "MYSTERY",
    "ROMANCE", "SCIENCE-FICTION", "SPORTS", "TRAVEL",
)
