"""TPC-W: transactional web e-commerce benchmark (online bookstore).

The paper's evaluation (§6.2-§6.5) runs the Java servlet implementation of
TPC-W from the University of Wisconsin with 10,000 items and 288,000
customers, and reports SQL-requests-per-minute for the three workload mixes
(browsing 95 % read-only, shopping 80 %, ordering 50 %).

This package provides:

* :mod:`repro.workloads.tpcw.schema` — the TPC-W tables and a scalable data
  generator;
* :mod:`repro.workloads.tpcw.interactions` — the 14 web interactions as SQL
  transaction templates and as statement profiles for the simulator;
* :mod:`repro.workloads.tpcw.mixes` — the browsing / shopping / ordering
  interaction mixes.
"""

from repro.workloads.tpcw.interactions import INTERACTIONS, TPCWInteractions
from repro.workloads.tpcw.mixes import BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX, TPCWMix
from repro.workloads.tpcw.schema import TPCWDataGenerator, TPCW_TABLES, create_schema

__all__ = [
    "BROWSING_MIX",
    "INTERACTIONS",
    "ORDERING_MIX",
    "SHOPPING_MIX",
    "TPCWDataGenerator",
    "TPCWInteractions",
    "TPCWMix",
    "TPCW_TABLES",
    "create_schema",
]
