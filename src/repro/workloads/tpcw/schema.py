"""TPC-W schema and data generator.

The table set follows the TPC-W specification (the same one used by the
University of Wisconsin servlet implementation the paper runs): country,
address, customer, author, item, orders, order_line, cc_xacts,
shopping_cart, shopping_cart_line.

The paper's scaling parameters are 10,000 items and 288,000 customers
(~350 MB).  The generator accepts a ``scale`` factor so tests and examples
can run with a small database while keeping the 1:28.8 item:customer ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

#: CREATE TABLE statements, keyed by table name (creation order preserved).
TPCW_TABLES: Dict[str, str] = {
    "country": (
        "CREATE TABLE country ("
        " co_id INT PRIMARY KEY,"
        " co_name VARCHAR(50) NOT NULL,"
        " co_exchange DOUBLE,"
        " co_currency VARCHAR(18))"
    ),
    "address": (
        "CREATE TABLE address ("
        " addr_id INT PRIMARY KEY,"
        " addr_street1 VARCHAR(40),"
        " addr_street2 VARCHAR(40),"
        " addr_city VARCHAR(30),"
        " addr_state VARCHAR(20),"
        " addr_zip VARCHAR(10),"
        " addr_co_id INT)"
    ),
    "customer": (
        "CREATE TABLE customer ("
        " c_id INT PRIMARY KEY,"
        " c_uname VARCHAR(20) NOT NULL,"
        " c_passwd VARCHAR(20),"
        " c_fname VARCHAR(17),"
        " c_lname VARCHAR(17),"
        " c_addr_id INT,"
        " c_phone VARCHAR(18),"
        " c_email VARCHAR(50),"
        " c_since DATE,"
        " c_last_login TIMESTAMP,"
        " c_login TIMESTAMP,"
        " c_expiration TIMESTAMP,"
        " c_discount DOUBLE,"
        " c_balance DOUBLE,"
        " c_ytd_pmt DOUBLE,"
        " c_birthdate DATE,"
        " c_data VARCHAR(100))"
    ),
    "author": (
        "CREATE TABLE author ("
        " a_id INT PRIMARY KEY,"
        " a_fname VARCHAR(20),"
        " a_lname VARCHAR(20),"
        " a_mname VARCHAR(20),"
        " a_dob DATE,"
        " a_bio VARCHAR(200))"
    ),
    "item": (
        "CREATE TABLE item ("
        " i_id INT PRIMARY KEY,"
        " i_title VARCHAR(60) NOT NULL,"
        " i_a_id INT,"
        " i_pub_date DATE,"
        " i_publisher VARCHAR(60),"
        " i_subject VARCHAR(60),"
        " i_desc VARCHAR(200),"
        " i_related1 INT,"
        " i_related2 INT,"
        " i_related3 INT,"
        " i_related4 INT,"
        " i_related5 INT,"
        " i_thumbnail VARCHAR(40),"
        " i_image VARCHAR(40),"
        " i_srp DOUBLE,"
        " i_cost DOUBLE,"
        " i_avail DATE,"
        " i_stock INT,"
        " i_isbn VARCHAR(13),"
        " i_page INT,"
        " i_backing VARCHAR(15),"
        " i_dimensions VARCHAR(25))"
    ),
    "orders": (
        "CREATE TABLE orders ("
        " o_id INT PRIMARY KEY AUTO_INCREMENT,"
        " o_c_id INT,"
        " o_date TIMESTAMP,"
        " o_sub_total DOUBLE,"
        " o_tax DOUBLE,"
        " o_total DOUBLE,"
        " o_ship_type VARCHAR(10),"
        " o_ship_date TIMESTAMP,"
        " o_bill_addr_id INT,"
        " o_ship_addr_id INT,"
        " o_status VARCHAR(15))"
    ),
    "order_line": (
        "CREATE TABLE order_line ("
        " ol_id INT PRIMARY KEY AUTO_INCREMENT,"
        " ol_o_id INT NOT NULL,"
        " ol_i_id INT NOT NULL,"
        " ol_qty INT,"
        " ol_discount DOUBLE,"
        " ol_comments VARCHAR(110))"
    ),
    "cc_xacts": (
        "CREATE TABLE cc_xacts ("
        " cx_o_id INT PRIMARY KEY,"
        " cx_type VARCHAR(10),"
        " cx_num VARCHAR(20),"
        " cx_name VARCHAR(30),"
        " cx_expire DATE,"
        " cx_auth_id VARCHAR(15),"
        " cx_xact_amt DOUBLE,"
        " cx_xact_date TIMESTAMP,"
        " cx_co_id INT)"
    ),
    "shopping_cart": (
        "CREATE TABLE shopping_cart ("
        " sc_id INT PRIMARY KEY AUTO_INCREMENT,"
        " sc_time TIMESTAMP)"
    ),
    "shopping_cart_line": (
        "CREATE TABLE shopping_cart_line ("
        " scl_id INT PRIMARY KEY AUTO_INCREMENT,"
        " scl_sc_id INT NOT NULL,"
        " scl_i_id INT NOT NULL,"
        " scl_qty INT)"
    ),
}

#: secondary indexes created after loading
TPCW_INDEXES: Sequence[str] = (
    "CREATE INDEX idx_customer_uname ON customer (c_uname)",
    "CREATE INDEX idx_item_subject ON item (i_subject)",
    "CREATE INDEX idx_item_author ON item (i_a_id)",
    "CREATE INDEX idx_item_title ON item (i_title)",
    "CREATE INDEX idx_orders_customer ON orders (o_c_id)",
    "CREATE INDEX idx_order_line_order ON order_line (ol_o_id)",
    "CREATE INDEX idx_order_line_item ON order_line (ol_i_id)",
    "CREATE INDEX idx_scl_cart ON shopping_cart_line (scl_sc_id)",
    "CREATE INDEX idx_author_lname ON author (a_lname)",
)

SUBJECTS = (
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
)

COUNTRIES = (
    "United States", "United Kingdom", "Canada", "Germany", "France",
    "Japan", "Netherlands", "Switzerland", "Australia", "Italy",
)


@dataclass
class TPCWScale:
    """Scaling parameters; the paper uses items=10000, customers=288000."""

    items: int = 10000
    customers: int = 288000

    @classmethod
    def scaled(cls, scale: float) -> "TPCWScale":
        """A proportionally scaled-down database (scale=1.0 is the paper's size)."""
        items = max(10, int(10000 * scale))
        customers = max(20, int(288000 * scale))
        return cls(items=items, customers=customers)

    @property
    def authors(self) -> int:
        return max(5, self.items // 4)

    @property
    def addresses(self) -> int:
        return self.customers * 2

    @property
    def orders(self) -> int:
        return max(10, int(self.customers * 0.9))


def create_schema(connection, with_indexes: bool = True) -> None:
    """Create the TPC-W tables (and indexes) through a DB-API connection."""
    cursor = connection.cursor()
    for create_sql in TPCW_TABLES.values():
        cursor.execute(create_sql)
    if with_indexes:
        for index_sql in TPCW_INDEXES:
            cursor.execute(index_sql)
    connection.commit()


class TPCWDataGenerator:
    """Deterministic (seeded) TPC-W data generator."""

    def __init__(self, scale: TPCWScale = None, seed: int = 42):
        self.scale = scale or TPCWScale.scaled(0.01)
        self.random = random.Random(seed)

    # -- population -------------------------------------------------------------------

    def populate(self, connection, batch_size: int = 200) -> Dict[str, int]:
        """Load every table; returns row counts per table."""
        counts = {}
        counts["country"] = self._load_countries(connection)
        counts["address"] = self._load_addresses(connection, batch_size)
        counts["customer"] = self._load_customers(connection, batch_size)
        counts["author"] = self._load_authors(connection, batch_size)
        counts["item"] = self._load_items(connection, batch_size)
        counts["orders"], counts["order_line"], counts["cc_xacts"] = self._load_orders(
            connection, batch_size
        )
        counts["shopping_cart"] = 0
        counts["shopping_cart_line"] = 0
        connection.commit()
        return counts

    def _load_countries(self, connection) -> int:
        cursor = connection.cursor()
        for co_id, name in enumerate(COUNTRIES, start=1):
            cursor.execute(
                "INSERT INTO country (co_id, co_name, co_exchange, co_currency)"
                " VALUES (?, ?, ?, ?)",
                (co_id, name, round(self.random.uniform(0.5, 2.0), 4), "USD"),
            )
        return len(COUNTRIES)

    def _load_addresses(self, connection, batch_size: int) -> int:
        cursor = connection.cursor()
        for addr_id in range(1, self.scale.addresses + 1):
            cursor.execute(
                "INSERT INTO address (addr_id, addr_street1, addr_street2, addr_city,"
                " addr_state, addr_zip, addr_co_id) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    addr_id,
                    f"{self.random.randint(1, 999)} Main St",
                    "",
                    f"City{self.random.randint(1, 500)}",
                    f"ST{self.random.randint(1, 50)}",
                    f"{self.random.randint(10000, 99999)}",
                    self.random.randint(1, len(COUNTRIES)),
                ),
            )
        return self.scale.addresses

    def _load_customers(self, connection, batch_size: int) -> int:
        cursor = connection.cursor()
        for c_id in range(1, self.scale.customers + 1):
            cursor.execute(
                "INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname,"
                " c_addr_id, c_phone, c_email, c_since, c_discount, c_balance,"
                " c_ytd_pmt, c_data) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    c_id,
                    f"user{c_id}",
                    f"password{c_id}",
                    f"First{c_id % 1000}",
                    f"Last{c_id % 1000}",
                    self.random.randint(1, self.scale.addresses),
                    f"555-{self.random.randint(1000000, 9999999)}",
                    f"user{c_id}@example.com",
                    f"200{self.random.randint(0, 3)}-0{self.random.randint(1, 9)}-15",
                    round(self.random.uniform(0.0, 0.5), 2),
                    0.0,
                    round(self.random.uniform(0, 1000), 2),
                    "customer data",
                ),
            )
        return self.scale.customers

    def _load_authors(self, connection, batch_size: int) -> int:
        cursor = connection.cursor()
        for a_id in range(1, self.scale.authors + 1):
            cursor.execute(
                "INSERT INTO author (a_id, a_fname, a_lname, a_mname, a_bio)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    a_id,
                    f"AuthorFirst{a_id}",
                    f"AuthorLast{a_id % 100}",
                    "",
                    "bio",
                ),
            )
        return self.scale.authors

    def _load_items(self, connection, batch_size: int) -> int:
        cursor = connection.cursor()
        for i_id in range(1, self.scale.items + 1):
            related = [
                self.random.randint(1, self.scale.items) for _ in range(5)
            ]
            cursor.execute(
                "INSERT INTO item (i_id, i_title, i_a_id, i_pub_date, i_publisher,"
                " i_subject, i_desc, i_related1, i_related2, i_related3, i_related4,"
                " i_related5, i_thumbnail, i_image, i_srp, i_cost, i_stock, i_isbn,"
                " i_page, i_backing) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                " ?, ?, ?, ?, ?, ?)",
                (
                    i_id,
                    f"Book Title {i_id}",
                    self.random.randint(1, self.scale.authors),
                    f"19{self.random.randint(50, 99)}-01-01",
                    f"Publisher {i_id % 50}",
                    self.random.choice(SUBJECTS),
                    "description",
                    related[0], related[1], related[2], related[3], related[4],
                    f"img/thumb_{i_id}.gif",
                    f"img/image_{i_id}.gif",
                    round(self.random.uniform(10, 100), 2),
                    round(self.random.uniform(5, 90), 2),
                    self.random.randint(10, 30),
                    f"{self.random.randint(10 ** 12, 10 ** 13 - 1)}",
                    self.random.randint(20, 9999),
                    self.random.choice(("HARDBACK", "PAPERBACK", "AUDIO")),
                ),
            )
        return self.scale.items

    def _load_orders(self, connection, batch_size: int):
        cursor = connection.cursor()
        order_lines = 0
        for o_id in range(1, self.scale.orders + 1):
            customer = self.random.randint(1, self.scale.customers)
            subtotal = round(self.random.uniform(10, 500), 2)
            cursor.execute(
                "INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total,"
                " o_ship_type, o_bill_addr_id, o_ship_addr_id, o_status)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    o_id,
                    customer,
                    f"2003-0{self.random.randint(1, 9)}-1{self.random.randint(0, 9)} 12:00:00",
                    subtotal,
                    round(subtotal * 0.08, 2),
                    round(subtotal * 1.08, 2),
                    self.random.choice(("AIR", "UPS", "MAIL", "COURIER")),
                    self.random.randint(1, self.scale.addresses),
                    self.random.randint(1, self.scale.addresses),
                    self.random.choice(("PENDING", "PROCESSING", "SHIPPED")),
                ),
            )
            for _ in range(self.random.randint(1, 3)):
                order_lines += 1
                cursor.execute(
                    "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, ol_discount,"
                    " ol_comments) VALUES (?, ?, ?, ?, ?)",
                    (
                        o_id,
                        self.random.randint(1, self.scale.items),
                        self.random.randint(1, 5),
                        round(self.random.uniform(0, 0.3), 2),
                        "",
                    ),
                )
            cursor.execute(
                "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_xact_amt,"
                " cx_co_id) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    o_id,
                    self.random.choice(("VISA", "MASTERCARD", "AMEX")),
                    f"{self.random.randint(10 ** 15, 10 ** 16 - 1)}",
                    f"Name {customer}",
                    round(subtotal * 1.08, 2),
                    self.random.randint(1, len(COUNTRIES)),
                ),
            )
        return self.scale.orders, order_lines, self.scale.orders


def table_names() -> List[str]:
    """All TPC-W table names in creation order."""
    return list(TPCW_TABLES)
