"""TPC-W workload mixes (browsing / shopping / ordering).

TPC-W specifies the mixes through a Markov transition matrix over the 14
interactions; what matters for the database tier (and for the paper's
results) is the stationary frequency of each interaction and in particular
the fraction of read-only interactions: 95 % for the browsing mix, 80 % for
the shopping mix and 50 % for the ordering mix (paper §6.2).

We encode each mix directly as the stationary interaction frequencies
(weights), chosen so that the read-only interaction fractions match the
specification and the relative popularity of interactions follows the
TPC-W 1.8 specification tables (best sellers and new products dominate the
browsing mix, the ordering mix is dominated by the buy path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.workloads.profile import InteractionProfile
from repro.workloads.tpcw.interactions import INTERACTIONS, READ_ONLY_INTERACTIONS


@dataclass
class TPCWMix:
    """A named interaction mix: interaction name -> stationary weight."""

    name: str
    weights: Dict[str, float]
    #: think time between interactions in seconds (TPC-W uses a mean of 7 s;
    #: the emulated browsers of the paper's testbed follow the same model)
    mean_think_time: float = 7.0

    def __post_init__(self):
        unknown = set(self.weights) - set(INTERACTIONS)
        if unknown:
            raise ValueError(f"unknown interactions in mix {self.name!r}: {sorted(unknown)}")
        total = sum(self.weights.values())
        self.weights = {name: weight / total for name, weight in self.weights.items()}

    # -- properties ------------------------------------------------------------------

    @property
    def read_only_fraction(self) -> float:
        """Fraction of interactions that are read-only (per the spec's 6/14 split)."""
        return sum(
            weight
            for name, weight in self.weights.items()
            if name in READ_ONLY_INTERACTIONS
        )

    def interaction_items(self) -> List[Tuple[InteractionProfile, float]]:
        return [(INTERACTIONS[name], weight) for name, weight in self.weights.items()]

    # -- sampling ---------------------------------------------------------------------

    def sample(self, rng: random.Random) -> str:
        """Draw one interaction name according to the mix weights."""
        value = rng.random()
        cumulative = 0.0
        for name, weight in self.weights.items():
            cumulative += weight
            if value <= cumulative:
                return name
        return next(reversed(self.weights))

    def sample_think_time(self, rng: random.Random) -> float:
        """Negative-exponential think time, truncated like the TPC-W spec."""
        think = rng.expovariate(1.0 / self.mean_think_time)
        return min(think, self.mean_think_time * 10)

    def interaction_stream(self, seed: int = 0) -> Iterator[str]:
        """Infinite deterministic stream of interaction names."""
        rng = random.Random(seed)
        while True:
            yield self.sample(rng)


#: Browsing mix: 95 % read-only interactions, dominated by browse/search and
#: the expensive best-seller interaction.
BROWSING_MIX = TPCWMix(
    "browsing",
    {
        "home": 29.00,
        "new_products": 11.00,
        "best_sellers": 11.00,
        "product_detail": 21.00,
        "search_request": 12.00,
        "search_results": 11.00,
        "shopping_cart": 2.00,
        "customer_registration": 0.82,
        "buy_request": 0.75,
        "buy_confirm": 0.69,
        "order_inquiry": 0.30,
        "order_display": 0.25,
        "admin_request": 0.10,
        "admin_confirm": 0.09,
    },
)

#: Shopping mix: 80 % read-only interactions (the most representative mix).
SHOPPING_MIX = TPCWMix(
    "shopping",
    {
        "home": 16.00,
        "new_products": 5.00,
        "best_sellers": 5.00,
        "product_detail": 17.00,
        "search_request": 20.00,
        "search_results": 17.00,
        "shopping_cart": 11.60,
        "customer_registration": 3.00,
        "buy_request": 2.60,
        "buy_confirm": 1.20,
        "order_inquiry": 0.75,
        "order_display": 0.66,
        "admin_request": 0.10,
        "admin_confirm": 0.09,
    },
)

#: Ordering mix: 50 % read-only interactions, 50 % with updates.
ORDERING_MIX = TPCWMix(
    "ordering",
    {
        "home": 9.12,
        "new_products": 0.46,
        "best_sellers": 0.46,
        "product_detail": 12.35,
        "search_request": 14.53,
        "search_results": 13.08,
        "shopping_cart": 13.53,
        "customer_registration": 12.86,
        "buy_request": 12.73,
        "buy_confirm": 10.18,
        "order_inquiry": 0.25,
        "order_display": 0.22,
        "admin_request": 0.12,
        "admin_confirm": 0.11,
    },
)

ALL_MIXES: Dict[str, TPCWMix] = {
    "browsing": BROWSING_MIX,
    "shopping": SHOPPING_MIX,
    "ordering": ORDERING_MIX,
}


def mix_by_name(name: str) -> TPCWMix:
    try:
        return ALL_MIXES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown TPC-W mix {name!r}") from None
