"""RUBiS workload mixes.

The paper's Table 1 uses the *bidding mix*: 80 % read-only interactions and
20 % read-write interactions.  A browsing-only mix (100 % read-only) is also
provided for cache experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.workloads.profile import InteractionProfile
from repro.workloads.rubis.interactions import READ_ONLY_INTERACTIONS, RUBIS_INTERACTIONS


@dataclass
class RUBiSMix:
    """A named interaction mix: interaction name -> stationary weight."""

    name: str
    weights: Dict[str, float]
    mean_think_time: float = 7.0

    def __post_init__(self):
        unknown = set(self.weights) - set(RUBIS_INTERACTIONS)
        if unknown:
            raise ValueError(f"unknown interactions in mix {self.name!r}: {sorted(unknown)}")
        total = sum(self.weights.values())
        self.weights = {name: weight / total for name, weight in self.weights.items()}

    @property
    def read_only_fraction(self) -> float:
        return sum(
            weight
            for name, weight in self.weights.items()
            if name in READ_ONLY_INTERACTIONS
        )

    def interaction_items(self) -> List[Tuple[InteractionProfile, float]]:
        return [(RUBIS_INTERACTIONS[name], weight) for name, weight in self.weights.items()]

    def sample(self, rng: random.Random) -> str:
        value = rng.random()
        cumulative = 0.0
        for name, weight in self.weights.items():
            cumulative += weight
            if value <= cumulative:
                return name
        return next(reversed(self.weights))

    def sample_think_time(self, rng: random.Random) -> float:
        think = rng.expovariate(1.0 / self.mean_think_time)
        return min(think, self.mean_think_time * 10)

    def interaction_stream(self, seed: int = 0) -> Iterator[str]:
        rng = random.Random(seed)
        while True:
            yield self.sample(rng)


#: Bidding mix: 80 % read-only / 20 % read-write interactions (Table 1).
BIDDING_MIX = RUBiSMix(
    "bidding",
    {
        "browse_categories": 8.0,
        "browse_regions": 6.0,
        "search_items_by_category": 22.0,
        "search_items_by_region": 10.0,
        "view_item": 20.0,
        "view_user_info": 8.0,
        "view_bid_history": 6.0,
        "register_user": 1.5,
        "register_item": 2.5,
        "store_bid": 10.0,
        "store_buy_now": 2.0,
        "store_comment": 4.0,
    },
)

#: Browsing-only mix: 100 % read-only (used by cache unit benches).
BROWSING_ONLY_MIX = RUBiSMix(
    "browsing_only",
    {
        "browse_categories": 12.0,
        "browse_regions": 8.0,
        "search_items_by_category": 30.0,
        "search_items_by_region": 15.0,
        "view_item": 20.0,
        "view_user_info": 8.0,
        "view_bid_history": 7.0,
    },
)
