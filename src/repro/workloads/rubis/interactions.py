"""RUBiS interactions (servlet version) as SQL templates and statement profiles.

The bidding mix of the paper (Table 1) features 80 % read-only interactions
(browse categories/regions, view items, view bid history, view user info)
and 20 % read-write interactions (register user, register item, store bid,
store buy-now, store comment).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.workloads.profile import InteractionProfile, StatementClass, StatementProfile

_S = StatementProfile
_C = StatementClass

RUBIS_INTERACTIONS: Dict[str, InteractionProfile] = {
    # read-only
    "browse_categories": InteractionProfile(
        "browse_categories", (_S(_C.READ_SIMPLE, ("categories",)),)
    ),
    "browse_regions": InteractionProfile(
        "browse_regions", (_S(_C.READ_SIMPLE, ("regions",)),)
    ),
    "search_items_by_category": InteractionProfile(
        "search_items_by_category",
        (_S(_C.READ_COMPLEX, ("items",)),),
    ),
    "search_items_by_region": InteractionProfile(
        "search_items_by_region",
        (_S(_C.READ_COMPLEX, ("items", "users"), cost_factor=1.5),),
    ),
    "view_item": InteractionProfile(
        "view_item",
        (
            _S(_C.READ_SIMPLE, ("items",)),
            _S(_C.READ_SIMPLE, ("bids",)),
        ),
    ),
    "view_user_info": InteractionProfile(
        "view_user_info",
        (
            _S(_C.READ_SIMPLE, ("users",)),
            _S(_C.READ_COMPLEX, ("comments", "users")),
        ),
    ),
    "view_bid_history": InteractionProfile(
        "view_bid_history",
        (_S(_C.READ_COMPLEX, ("bids", "users", "items")),),
    ),
    # read-write
    "register_user": InteractionProfile(
        "register_user",
        (
            _S(_C.READ_SIMPLE, ("users",)),
            _S(_C.WRITE_SIMPLE, ("users",)),
        ),
        transactional=True,
    ),
    "register_item": InteractionProfile(
        "register_item",
        (_S(_C.WRITE_SIMPLE, ("items",)),),
        transactional=True,
    ),
    "store_bid": InteractionProfile(
        "store_bid",
        (
            _S(_C.READ_SIMPLE, ("items",)),
            _S(_C.WRITE_SIMPLE, ("bids",)),
            _S(_C.WRITE_SIMPLE, ("items",)),
        ),
        transactional=True,
    ),
    "store_buy_now": InteractionProfile(
        "store_buy_now",
        (
            _S(_C.READ_SIMPLE, ("items",)),
            _S(_C.WRITE_SIMPLE, ("buy_now",)),
            _S(_C.WRITE_SIMPLE, ("items",)),
        ),
        transactional=True,
    ),
    "store_comment": InteractionProfile(
        "store_comment",
        (
            _S(_C.WRITE_SIMPLE, ("comments",)),
            _S(_C.WRITE_SIMPLE, ("users",)),
        ),
        transactional=True,
    ),
}

READ_ONLY_INTERACTIONS = (
    "browse_categories",
    "browse_regions",
    "search_items_by_category",
    "search_items_by_region",
    "view_item",
    "view_user_info",
    "view_bid_history",
)


class RUBiSInteractions:
    """Run RUBiS interactions against a DB-API connection."""

    def __init__(self, connection, users: int, items: int, seed: int = 11):
        self.connection = connection
        self.users = users
        self.items = items
        self.random = random.Random(seed)

    def run(self, name: str) -> int:
        return getattr(self, name)()

    def _user_id(self) -> int:
        return self.random.randint(1, self.users)

    def _item_id(self) -> int:
        return self.random.randint(1, self.items)

    # -- read-only ------------------------------------------------------------------

    def browse_categories(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute("SELECT id, name FROM categories ORDER BY name")
        cursor.fetchall()
        return 1

    def browse_regions(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute("SELECT id, name FROM regions ORDER BY name")
        cursor.fetchall()
        return 1

    def search_items_by_category(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute(
            "SELECT id, name, initial_price, max_bid, nb_of_bids FROM items"
            " WHERE category = ? ORDER BY id LIMIT 25",
            (self.random.randint(1, 15),),
        )
        cursor.fetchall()
        return 1

    def search_items_by_region(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute(
            "SELECT items.id, items.name, items.max_bid FROM items, users"
            " WHERE items.seller = users.id AND users.region = ? AND items.category = ?"
            " ORDER BY items.id LIMIT 25",
            (self.random.randint(1, 12), self.random.randint(1, 15)),
        )
        cursor.fetchall()
        return 1

    def view_item(self) -> int:
        cursor = self.connection.cursor()
        item = self._item_id()
        cursor.execute(
            "SELECT name, initial_price, max_bid, nb_of_bids, quantity, seller"
            " FROM items WHERE id = ?",
            (item,),
        )
        cursor.fetchall()
        cursor.execute(
            "SELECT MAX(bid) FROM bids WHERE item_id = ?", (item,)
        )
        cursor.fetchall()
        return 2

    def view_user_info(self) -> int:
        cursor = self.connection.cursor()
        user = self._user_id()
        cursor.execute(
            "SELECT nickname, rating, creation_date FROM users WHERE id = ?", (user,)
        )
        cursor.fetchall()
        cursor.execute(
            "SELECT comments.comment, comments.rating, users.nickname"
            " FROM comments, users WHERE comments.to_user_id = ?"
            " AND comments.from_user_id = users.id LIMIT 10",
            (user,),
        )
        cursor.fetchall()
        return 2

    def view_bid_history(self) -> int:
        cursor = self.connection.cursor()
        cursor.execute(
            "SELECT bids.bid, bids.date, users.nickname, items.name"
            " FROM bids, users, items"
            " WHERE bids.item_id = ? AND bids.user_id = users.id AND bids.item_id = items.id"
            " ORDER BY bids.bid DESC LIMIT 20",
            (self._item_id(),),
        )
        cursor.fetchall()
        return 1

    # -- read-write -------------------------------------------------------------------

    def register_user(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = connection.cursor()
        new_id = self.users + self.random.randint(10 ** 6, 2 * 10 ** 6)
        cursor.execute("SELECT id FROM users WHERE nickname = ?", (f"nick{new_id}",))
        cursor.fetchall()
        cursor.execute(
            "INSERT INTO users (id, firstname, lastname, nickname, password, email,"
            " rating, balance, region) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (new_id, "New", "User", f"nick{new_id}", "pw", f"u{new_id}@rubis.com", 0, 0.0, 1),
        )
        connection.commit()
        return 2

    def register_item(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = connection.cursor()
        price = round(self.random.uniform(1, 100), 2)
        cursor.execute(
            "INSERT INTO items (name, description, initial_price, quantity, reserve_price,"
            " buy_now, nb_of_bids, max_bid, seller, category)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                "New item",
                "description",
                price,
                1,
                round(price * 1.2, 2),
                round(price * 2, 2),
                0,
                price,
                self._user_id(),
                self.random.randint(1, 15),
            ),
        )
        connection.commit()
        return 1

    def store_bid(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = connection.cursor()
        item = self._item_id()
        cursor.execute("SELECT max_bid, nb_of_bids FROM items WHERE id = ?", (item,))
        row = cursor.fetchone()
        current = (row[0] if row and row[0] else 1.0) + self.random.uniform(0.5, 5.0)
        cursor.execute(
            "INSERT INTO bids (user_id, item_id, qty, bid, max_bid, date)"
            " VALUES (?, ?, ?, ?, ?, NOW())",
            (self._user_id(), item, 1, round(current, 2), round(current * 1.1, 2)),
        )
        cursor.execute(
            "UPDATE items SET max_bid = ?, nb_of_bids = nb_of_bids + 1 WHERE id = ?",
            (round(current, 2), item),
        )
        connection.commit()
        return 3

    def store_buy_now(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = connection.cursor()
        item = self._item_id()
        cursor.execute("SELECT quantity FROM items WHERE id = ?", (item,))
        cursor.fetchall()
        cursor.execute(
            "INSERT INTO buy_now (buyer_id, item_id, qty, date) VALUES (?, ?, ?, NOW())",
            (self._user_id(), item, 1),
        )
        cursor.execute(
            "UPDATE items SET quantity = quantity - 1 WHERE id = ? AND quantity > 0",
            (item,),
        )
        connection.commit()
        return 3

    def store_comment(self) -> int:
        connection = self.connection
        connection.begin()
        cursor = connection.cursor()
        to_user = self._user_id()
        rating = self.random.randint(-5, 5)
        cursor.execute(
            "INSERT INTO comments (from_user_id, to_user_id, item_id, rating, date, comment)"
            " VALUES (?, ?, ?, ?, NOW(), ?)",
            (self._user_id(), to_user, self._item_id(), rating, "nice"),
        )
        cursor.execute(
            "UPDATE users SET rating = rating + ? WHERE id = ?", (rating, to_user)
        )
        connection.commit()
        return 2
