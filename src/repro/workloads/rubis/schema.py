"""RUBiS schema and data generator (auction site)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence

RUBIS_TABLES: Dict[str, str] = {
    "regions": (
        "CREATE TABLE regions ("
        " id INT PRIMARY KEY,"
        " name VARCHAR(25) NOT NULL)"
    ),
    "categories": (
        "CREATE TABLE categories ("
        " id INT PRIMARY KEY,"
        " name VARCHAR(50) NOT NULL)"
    ),
    "users": (
        "CREATE TABLE users ("
        " id INT PRIMARY KEY AUTO_INCREMENT,"
        " firstname VARCHAR(20),"
        " lastname VARCHAR(20),"
        " nickname VARCHAR(20) NOT NULL,"
        " password VARCHAR(20) NOT NULL,"
        " email VARCHAR(50) NOT NULL,"
        " rating INT,"
        " balance DOUBLE,"
        " creation_date TIMESTAMP,"
        " region INT NOT NULL)"
    ),
    "items": (
        "CREATE TABLE items ("
        " id INT PRIMARY KEY AUTO_INCREMENT,"
        " name VARCHAR(100),"
        " description TEXT,"
        " initial_price DOUBLE NOT NULL,"
        " quantity INT NOT NULL,"
        " reserve_price DOUBLE,"
        " buy_now DOUBLE,"
        " nb_of_bids INT,"
        " max_bid DOUBLE,"
        " start_date TIMESTAMP,"
        " end_date TIMESTAMP,"
        " seller INT NOT NULL,"
        " category INT NOT NULL)"
    ),
    "bids": (
        "CREATE TABLE bids ("
        " id INT PRIMARY KEY AUTO_INCREMENT,"
        " user_id INT NOT NULL,"
        " item_id INT NOT NULL,"
        " qty INT,"
        " bid DOUBLE NOT NULL,"
        " max_bid DOUBLE,"
        " date TIMESTAMP)"
    ),
    "comments": (
        "CREATE TABLE comments ("
        " id INT PRIMARY KEY AUTO_INCREMENT,"
        " from_user_id INT NOT NULL,"
        " to_user_id INT NOT NULL,"
        " item_id INT NOT NULL,"
        " rating INT,"
        " date TIMESTAMP,"
        " comment VARCHAR(255))"
    ),
    "buy_now": (
        "CREATE TABLE buy_now ("
        " id INT PRIMARY KEY AUTO_INCREMENT,"
        " buyer_id INT NOT NULL,"
        " item_id INT NOT NULL,"
        " qty INT,"
        " date TIMESTAMP)"
    ),
}

RUBIS_INDEXES: Sequence[str] = (
    "CREATE INDEX idx_users_nickname ON users (nickname)",
    "CREATE INDEX idx_users_region ON users (region)",
    "CREATE INDEX idx_items_category ON items (category)",
    "CREATE INDEX idx_items_seller ON items (seller)",
    "CREATE INDEX idx_bids_item ON bids (item_id)",
    "CREATE INDEX idx_bids_user ON bids (user_id)",
    "CREATE INDEX idx_comments_to ON comments (to_user_id)",
    "CREATE INDEX idx_buy_now_item ON buy_now (item_id)",
)

REGIONS = (
    "Arizona", "California", "Colorado", "Florida", "Georgia", "Illinois",
    "Massachusetts", "New York", "Oregon", "Texas", "Virginia", "Washington",
)

CATEGORIES = (
    "Antiques", "Books", "Business", "Clothing", "Computers", "Collectibles",
    "Electronics", "Home", "Jewelry", "Movies", "Music", "Photo", "Sports",
    "Toys", "Travel",
)


@dataclass
class RUBISScale:
    """Scaling parameters; RUBiS's standard database has ~1M users, 33k items."""

    users: int = 1000
    items: int = 300
    bids_per_item: int = 10
    comments_per_user: int = 2

    @classmethod
    def small(cls) -> "RUBISScale":
        return cls(users=200, items=60, bids_per_item=5, comments_per_user=1)


def create_schema(connection, with_indexes: bool = True) -> None:
    cursor = connection.cursor()
    for create_sql in RUBIS_TABLES.values():
        cursor.execute(create_sql)
    if with_indexes:
        for index_sql in RUBIS_INDEXES:
            cursor.execute(index_sql)
    connection.commit()


class RUBISDataGenerator:
    """Deterministic (seeded) RUBiS data generator."""

    def __init__(self, scale: RUBISScale = None, seed: int = 99):
        self.scale = scale or RUBISScale.small()
        self.random = random.Random(seed)

    def populate(self, connection) -> Dict[str, int]:
        counts = {}
        cursor = connection.cursor()
        for region_id, name in enumerate(REGIONS, start=1):
            cursor.execute("INSERT INTO regions (id, name) VALUES (?, ?)", (region_id, name))
        counts["regions"] = len(REGIONS)
        for category_id, name in enumerate(CATEGORIES, start=1):
            cursor.execute(
                "INSERT INTO categories (id, name) VALUES (?, ?)", (category_id, name)
            )
        counts["categories"] = len(CATEGORIES)
        for user_id in range(1, self.scale.users + 1):
            cursor.execute(
                "INSERT INTO users (id, firstname, lastname, nickname, password, email,"
                " rating, balance, region) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    user_id,
                    f"First{user_id}",
                    f"Last{user_id}",
                    f"nick{user_id}",
                    f"password{user_id}",
                    f"user{user_id}@rubis.com",
                    self.random.randint(0, 10),
                    0.0,
                    self.random.randint(1, len(REGIONS)),
                ),
            )
        counts["users"] = self.scale.users
        bid_count = 0
        for item_id in range(1, self.scale.items + 1):
            initial_price = round(self.random.uniform(1, 100), 2)
            cursor.execute(
                "INSERT INTO items (id, name, description, initial_price, quantity,"
                " reserve_price, buy_now, nb_of_bids, max_bid, seller, category)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    item_id,
                    f"Item {item_id}",
                    "description",
                    initial_price,
                    self.random.randint(1, 10),
                    round(initial_price * 1.2, 2),
                    round(initial_price * 2.0, 2),
                    0,
                    initial_price,
                    self.random.randint(1, self.scale.users),
                    self.random.randint(1, len(CATEGORIES)),
                ),
            )
            current_bid = initial_price
            for _ in range(self.random.randint(0, self.scale.bids_per_item)):
                current_bid = round(current_bid + self.random.uniform(0.5, 5.0), 2)
                bid_count += 1
                cursor.execute(
                    "INSERT INTO bids (user_id, item_id, qty, bid, max_bid)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (
                        self.random.randint(1, self.scale.users),
                        item_id,
                        1,
                        current_bid,
                        round(current_bid * 1.1, 2),
                    ),
                )
            cursor.execute(
                "UPDATE items SET nb_of_bids = ?, max_bid = ? WHERE id = ?",
                (self.random.randint(0, self.scale.bids_per_item), current_bid, item_id),
            )
        counts["items"] = self.scale.items
        counts["bids"] = bid_count
        comment_count = 0
        for user_id in range(1, self.scale.users + 1):
            for _ in range(self.random.randint(0, self.scale.comments_per_user)):
                comment_count += 1
                cursor.execute(
                    "INSERT INTO comments (from_user_id, to_user_id, item_id, rating, comment)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (
                        self.random.randint(1, self.scale.users),
                        user_id,
                        self.random.randint(1, self.scale.items),
                        self.random.randint(-5, 5),
                        "great seller",
                    ),
                )
        counts["comments"] = comment_count
        counts["buy_now"] = 0
        connection.commit()
        return counts
