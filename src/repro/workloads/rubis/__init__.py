"""RUBiS: Rice University Bidding System (auction site, eBay-like).

Used in the paper (§6.6, Table 1) to evaluate the query result cache: the
servlet version with the *bidding mix* (80 % read-only, 20 % read-write
interactions), 450 clients and a single MySQL backend.
"""

from repro.workloads.rubis.interactions import RUBIS_INTERACTIONS, RUBiSInteractions
from repro.workloads.rubis.mixes import BIDDING_MIX, BROWSING_ONLY_MIX, RUBiSMix
from repro.workloads.rubis.schema import RUBISDataGenerator, RUBIS_TABLES, create_schema

__all__ = [
    "BIDDING_MIX",
    "BROWSING_ONLY_MIX",
    "RUBISDataGenerator",
    "RUBIS_INTERACTIONS",
    "RUBIS_TABLES",
    "RUBiSInteractions",
    "RUBiSMix",
    "create_schema",
]
