"""Recursive-descent SQL parser.

Turns token streams produced by :mod:`repro.sql.lexer` into the AST defined
in :mod:`repro.sql.ast`.  The grammar covers the statements issued by the
TPC-W and RUBiS workloads and by the middleware itself (schema discovery,
recovery-log replay, checkpoint restore):

* ``SELECT`` with joins (``INNER``/``LEFT``/``CROSS`` and implicit comma
  joins), ``WHERE``, ``GROUP BY``/``HAVING``, ``ORDER BY``, ``LIMIT/OFFSET``,
  ``DISTINCT``, aggregates, scalar functions, ``CASE``, ``IN`` (list and
  subquery), ``BETWEEN``, ``LIKE``, ``EXISTS``;
* ``INSERT`` (``VALUES`` lists and ``INSERT ... SELECT``);
* ``UPDATE`` / ``DELETE`` with ``WHERE``;
* DDL: ``CREATE TABLE`` (column constraints, table-level PRIMARY KEY/UNIQUE),
  ``DROP TABLE``, ``CREATE [UNIQUE] INDEX``, ``DROP INDEX``,
  ``ALTER TABLE ... ADD COLUMN``;
* transaction control: ``BEGIN``/``START TRANSACTION``, ``COMMIT``,
  ``ROLLBACK``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement and return its AST."""
    parser = Parser(tokenize(sql), sql)
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone SQL expression (used by tests and cache rules)."""
    parser = Parser(tokenize(sql), sql)
    expression = parser.parse_expr()
    parser.expect_end()
    return expression


class Parser:
    """Stateful recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token], sql: str = ""):
        self._tokens = tokens
        self._sql = sql
        self._pos = 0
        self._parameter_count = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: str = None) -> bool:
        return self.current.matches(token_type, value)

    def _check_keyword(self, *keywords: str) -> bool:
        return any(self.current.matches(TokenType.KEYWORD, kw) for kw in keywords)

    def _accept(self, token_type: TokenType, value: str = None) -> Optional[Token]:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _accept_keyword(self, *keywords: str) -> Optional[Token]:
        for keyword in keywords:
            token = self._accept(TokenType.KEYWORD, keyword)
            if token is not None:
                return token
        return None

    def _expect(self, token_type: TokenType, value: str = None) -> Token:
        token = self._accept(token_type, value)
        if token is None:
            raise self._error(f"expected {value or token_type.name}")
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        return self._expect(TokenType.KEYWORD, keyword)

    def _error(self, message: str) -> SQLSyntaxError:
        token = self.current
        return SQLSyntaxError(
            f"{message}, found {token.value!r} at position {token.position}"
            f" in {self._sql[:200]!r}"
        )

    def expect_end(self) -> None:
        self._accept(TokenType.PUNCTUATION, ";")
        if not self._check(TokenType.EOF):
            raise self._error("unexpected trailing input")

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._check_keyword("SELECT"):
            return self.parse_select()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("UPDATE"):
            return self._parse_update()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        if self._check_keyword("CREATE"):
            return self._parse_create()
        if self._check_keyword("DROP"):
            return self._parse_drop()
        if self._check_keyword("ALTER"):
            return self._parse_alter()
        if self._check_keyword("BEGIN", "START"):
            return self._parse_begin()
        if self._check_keyword("COMMIT"):
            self._advance()
            self._accept_keyword("WORK")
            return ast.Commit()
        if self._check_keyword("ROLLBACK"):
            self._advance()
            self._accept_keyword("WORK")
            return ast.Rollback()
        raise self._error("expected a SQL statement")

    def _parse_begin(self) -> ast.BeginTransaction:
        if self._accept_keyword("START"):
            self._expect_keyword("TRANSACTION")
        else:
            self._expect_keyword("BEGIN")
            self._accept_keyword("TRANSACTION")
            self._accept_keyword("WORK")
        return ast.BeginTransaction()

    # -- SELECT -------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        select = ast.Select()
        if self._accept_keyword("DISTINCT"):
            select.distinct = True
        else:
            self._accept_keyword("ALL")
        select.items = self._parse_select_items()
        if self._accept_keyword("FROM"):
            select.from_table = self._parse_table_ref()
            select.joins = self._parse_joins()
        if self._accept_keyword("WHERE"):
            select.where = self.parse_expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            select.group_by = self._parse_expression_list()
        if self._accept_keyword("HAVING"):
            select.having = self.parse_expr()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            select.order_by = self._parse_order_items()
        if self._accept_keyword("LIMIT"):
            first = self._parse_primary()
            if self._accept(TokenType.PUNCTUATION, ","):
                # MySQL style: LIMIT offset, count
                select.offset = first
                select.limit = self._parse_primary()
            else:
                select.limit = first
                if self._accept_keyword("OFFSET"):
                    select.offset = self._parse_primary()
        return select

    def _parse_select_items(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expression = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier()
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._parse_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier()
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _parse_joins(self) -> List[ast.Join]:
        joins: List[ast.Join] = []
        while True:
            if self._accept(TokenType.PUNCTUATION, ","):
                joins.append(ast.Join("CROSS", self._parse_table_ref()))
                continue
            kind = None
            if self._check_keyword("JOIN", "INNER"):
                self._accept_keyword("INNER")
                self._expect_keyword("JOIN")
                kind = "INNER"
            elif self._check_keyword("LEFT"):
                self._advance()
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "LEFT"
            elif self._check_keyword("CROSS"):
                self._advance()
                self._expect_keyword("JOIN")
                kind = "CROSS"
            else:
                break
            table = self._parse_table_ref()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self.parse_expr()
            joins.append(ast.Join(kind, table, condition))
        return joins

    def _parse_order_items(self) -> List[ast.OrderItem]:
        items = []
        while True:
            expression = self.parse_expr()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            items.append(ast.OrderItem(expression, descending))
            if not self._accept(TokenType.PUNCTUATION, ","):
                return items

    def _parse_expression_list(self) -> List[ast.Expression]:
        expressions = [self.parse_expr()]
        while self._accept(TokenType.PUNCTUATION, ","):
            expressions.append(self.parse_expr())
        return expressions

    # -- INSERT / UPDATE / DELETE -------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_identifier()
        columns: List[str] = []
        if self._accept(TokenType.PUNCTUATION, "("):
            columns.append(self._parse_identifier())
            while self._accept(TokenType.PUNCTUATION, ","):
                columns.append(self._parse_identifier())
            self._expect(TokenType.PUNCTUATION, ")")
        if self._check_keyword("SELECT"):
            return ast.Insert(table, columns, [], self.parse_select())
        self._expect_keyword("VALUES")
        rows: List[List[ast.Expression]] = []
        while True:
            self._expect(TokenType.PUNCTUATION, "(")
            row = [self.parse_expr()]
            while self._accept(TokenType.PUNCTUATION, ","):
                row.append(self.parse_expr())
            self._expect(TokenType.PUNCTUATION, ")")
            rows.append(row)
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        return ast.Insert(table, columns, rows)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._parse_identifier()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expression]] = []
        while True:
            column = self._parse_identifier()
            if self._accept(TokenType.PUNCTUATION, "."):
                column = self._parse_identifier()
            self._expect(TokenType.OPERATOR, "=")
            assignments.append((column, self.parse_expr()))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table, assignments, where)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table, where)

    # -- DDL ----------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        temporary = False
        if self._check(TokenType.IDENTIFIER) and self.current.value.upper() == "TEMPORARY":
            self._advance()
            temporary = True
        if self._accept_keyword("TABLE"):
            return self._parse_create_table(temporary)
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("INDEX"):
            return self._parse_create_index(unique)
        raise self._error("expected TABLE or INDEX after CREATE")

    def _parse_create_table(self, temporary: bool) -> ast.CreateTable:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            if not (
                self._accept(TokenType.IDENTIFIER)
                or self._accept_keyword("EXISTS")
            ):
                raise self._error("expected EXISTS")
            if_not_exists = True
        table = self._parse_identifier()
        statement = ast.CreateTable(
            table, if_not_exists=if_not_exists, temporary=temporary
        )
        self._expect(TokenType.PUNCTUATION, "(")
        while True:
            if self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                statement.primary_key = self._parse_paren_identifier_list()
            elif self._check_keyword("UNIQUE"):
                self._advance()
                self._accept_keyword("KEY")
                self._accept_keyword("INDEX")
                if self._check(TokenType.IDENTIFIER) and not self._check(
                    TokenType.PUNCTUATION, "("
                ):
                    # optional constraint name
                    if self._tokens[self._pos + 1].matches(TokenType.PUNCTUATION, "("):
                        self._advance()
                statement.unique_constraints.append(
                    self._parse_paren_identifier_list()
                )
            elif self._check_keyword("FOREIGN"):
                # Foreign keys are parsed and ignored (not enforced), like
                # MySQL MyISAM did at the time of the paper.
                self._skip_constraint_definition()
            elif self._check_keyword("KEY", "INDEX"):
                self._advance()
                if self._check(TokenType.IDENTIFIER):
                    self._advance()
                self._parse_paren_identifier_list()
            else:
                statement.columns.append(self._parse_column_def())
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        self._expect(TokenType.PUNCTUATION, ")")
        # Ignore trailing table options such as ENGINE=InnoDB.
        while not self._check(TokenType.EOF) and not self._check(
            TokenType.PUNCTUATION, ";"
        ):
            self._advance()
        return statement

    def _skip_constraint_definition(self) -> None:
        depth = 0
        while not self._check(TokenType.EOF):
            if self._check(TokenType.PUNCTUATION, "("):
                depth += 1
            elif self._check(TokenType.PUNCTUATION, ")"):
                if depth == 0:
                    return
                depth -= 1
            elif self._check(TokenType.PUNCTUATION, ",") and depth == 0:
                return
            self._advance()

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._parse_identifier()
        type_name = self._parse_identifier_or_keyword()
        length = None
        if self._accept(TokenType.PUNCTUATION, "("):
            length_token = self._expect(TokenType.NUMBER)
            length = int(float(length_token.value))
            if self._accept(TokenType.PUNCTUATION, ","):
                self._expect(TokenType.NUMBER)  # DECIMAL(p, s) scale, ignored
            self._expect(TokenType.PUNCTUATION, ")")
        column = ast.ColumnDef(name, type_name, length)
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._accept_keyword("NULL"):
                pass
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
                column.not_null = True
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("AUTO_INCREMENT"):
                column.auto_increment = True
            elif self._accept_keyword("DEFAULT"):
                column.default = self._parse_primary()
            else:
                break
        return column

    def _parse_paren_identifier_list(self) -> List[str]:
        self._expect(TokenType.PUNCTUATION, "(")
        names = [self._parse_identifier()]
        while self._accept(TokenType.PUNCTUATION, ","):
            names.append(self._parse_identifier())
        self._expect(TokenType.PUNCTUATION, ")")
        return names

    def _parse_create_index(self, unique: bool) -> ast.CreateIndex:
        name = self._parse_identifier()
        self._expect_keyword("ON")
        table = self._parse_identifier()
        columns = self._parse_paren_identifier_list()
        return ast.CreateIndex(name, table, columns, unique)

    def _parse_drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            if_exists = False
            if self._accept_keyword("IF"):
                if not (
                    self._accept(TokenType.IDENTIFIER)
                    or self._accept_keyword("EXISTS")
                ):
                    raise self._error("expected EXISTS")
                if_exists = True
            table = self._parse_identifier()
            return ast.DropTable(table, if_exists)
        if self._accept_keyword("INDEX"):
            name = self._parse_identifier()
            table = None
            if self._accept_keyword("ON"):
                table = self._parse_identifier()
            return ast.DropIndex(name, table)
        raise self._error("expected TABLE or INDEX after DROP")

    def _parse_alter(self) -> ast.AlterTableAddColumn:
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        table = self._parse_identifier()
        self._expect_keyword("ADD")
        # optional COLUMN keyword (identifier in our keyword set)
        if self._check(TokenType.IDENTIFIER) and self.current.value.upper() == "COLUMN":
            self._advance()
        column = self._parse_column_def()
        return ast.AlterTableAddColumn(table, column)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        if self._check_keyword("EXISTS"):
            self._advance()
            self._expect(TokenType.PUNCTUATION, "(")
            subquery = self.parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.ExistsSubquery(subquery)
        left = self._parse_additive()
        while True:
            negated = False
            if self._check_keyword("NOT") and self._tokens[self._pos + 1].type is TokenType.KEYWORD and self._tokens[self._pos + 1].value in ("IN", "LIKE", "BETWEEN"):
                self._advance()
                negated = True
            if self._accept_keyword("IS"):
                is_negated = bool(self._accept_keyword("NOT"))
                self._expect_keyword("NULL")
                left = ast.IsNull(left, is_negated)
                continue
            if self._accept_keyword("IN"):
                left = self._parse_in(left, negated)
                continue
            if self._accept_keyword("LIKE"):
                operator = "NOT LIKE" if negated else "LIKE"
                left = ast.BinaryOp(operator, left, self._parse_additive())
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self._check(TokenType.OPERATOR) and self.current.value in (
                "=",
                "<",
                "<=",
                ">",
                ">=",
                "<>",
                "!=",
            ):
                operator = self._advance().value
                if operator == "!=":
                    operator = "<>"
                left = ast.BinaryOp(operator, left, self._parse_additive())
                continue
            return left

    def _parse_in(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self._expect(TokenType.PUNCTUATION, "(")
        if self._check_keyword("SELECT"):
            subquery = self.parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.InSubquery(operand, subquery, negated)
        items = [self.parse_expr()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self.parse_expr())
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.InList(operand, items, negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._check(TokenType.OPERATOR) and self.current.value in ("+", "-", "||"):
            operator = self._advance().value
            left = ast.BinaryOp(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._check(TokenType.OPERATOR) and self.current.value in ("*", "/", "%"):
            operator = self._advance().value
            left = ast.BinaryOp(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._check(TokenType.OPERATOR) and self.current.value in ("-", "+"):
            operator = self._advance().value
            return ast.UnaryOp(operator, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value or "e" in token.value.lower():
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            parameter = ast.Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._parse_case()
        if token.type is TokenType.KEYWORD and token.value in (
            "COUNT",
            "SUM",
            "AVG",
            "MIN",
            "MAX",
        ):
            self._advance()
            return self._parse_function_call(token.value)
        if self._accept(TokenType.PUNCTUATION, "("):
            if self._check_keyword("SELECT"):
                subquery = self.parse_select()
                self._expect(TokenType.PUNCTUATION, ")")
                return ast.ScalarSubquery(subquery)
            expression = self.parse_expr()
            self._expect(TokenType.PUNCTUATION, ")")
            return expression
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            name = token.value
            if self._check(TokenType.PUNCTUATION, "(") :
                self._advance()
                return self._parse_function_args(name)
            if self._accept(TokenType.PUNCTUATION, "."):
                if self._check(TokenType.OPERATOR, "*"):
                    self._advance()
                    return ast.Star(table=name)
                column = self._parse_identifier()
                return ast.ColumnRef(column, name)
            return ast.ColumnRef(name)
        raise self._error("expected an expression")

    def _parse_case(self) -> ast.CaseExpression:
        self._expect_keyword("CASE")
        case = ast.CaseExpression()
        while self._accept_keyword("WHEN"):
            condition = self.parse_expr()
            self._expect_keyword("THEN")
            case.whens.append((condition, self.parse_expr()))
        if self._accept_keyword("ELSE"):
            case.default = self.parse_expr()
        self._expect_keyword("END")
        return case

    def _parse_function_call(self, name: str) -> ast.FunctionCall:
        self._expect(TokenType.PUNCTUATION, "(")
        return self._parse_function_args(name)

    def _parse_function_args(self, name: str) -> ast.FunctionCall:
        call = ast.FunctionCall(name)
        if self._accept(TokenType.PUNCTUATION, ")"):
            return call
        if self._accept_keyword("DISTINCT"):
            call.distinct = True
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            call.args.append(ast.Star())
        else:
            call.args.append(self.parse_expr())
            while self._accept(TokenType.PUNCTUATION, ","):
                call.args.append(self.parse_expr())
        self._expect(TokenType.PUNCTUATION, ")")
        return call

    # -- identifiers ----------------------------------------------------------

    def _parse_identifier(self) -> str:
        if self._check(TokenType.IDENTIFIER):
            return self._advance().value
        # Allow non-reserved keywords to be used as identifiers (e.g. a column
        # named "key" or a table named "order_line" is fine, but also KEY).
        if self._check(TokenType.KEYWORD) and self.current.value in (
            "KEY",
            "ORDER",
            "GROUP",
            "INDEX",
            "WORK",
            "END",
        ):
            return self._advance().value
        raise self._error("expected an identifier")

    def _parse_identifier_or_keyword(self) -> str:
        if self._check(TokenType.IDENTIFIER) or self._check(TokenType.KEYWORD):
            return self._advance().value
        raise self._error("expected a type name")
