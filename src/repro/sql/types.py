"""SQL value types, coercions and NULL (three-valued logic) helpers.

The engine stores Python values directly but tags every column with a
:class:`SQLType` so that coercions (e.g. comparing an ``INT`` column with the
string literal ``'42'``) behave like a conventional RDBMS and so that
``DatabaseMetaData`` can report precise type information to the middleware.
"""

from __future__ import annotations

import datetime as _dt
from enum import Enum
from typing import Any, Optional

from repro.errors import SQLTypeError


class SQLType(Enum):
    """Supported SQL column types."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    CHAR = "CHAR"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    BLOB = "BLOB"

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC_TYPES

    @property
    def is_character(self) -> bool:
        return self in _CHARACTER_TYPES

    @property
    def is_temporal(self) -> bool:
        return self in _TEMPORAL_TYPES


_NUMERIC_TYPES = {
    SQLType.INTEGER,
    SQLType.BIGINT,
    SQLType.FLOAT,
    SQLType.DOUBLE,
    SQLType.DECIMAL,
}
_CHARACTER_TYPES = {SQLType.VARCHAR, SQLType.CHAR, SQLType.TEXT}
_TEMPORAL_TYPES = {SQLType.DATE, SQLType.TIMESTAMP}

_TYPE_ALIASES = {
    "INT": SQLType.INTEGER,
    "INTEGER": SQLType.INTEGER,
    "SMALLINT": SQLType.INTEGER,
    "TINYINT": SQLType.INTEGER,
    "MEDIUMINT": SQLType.INTEGER,
    "BIGINT": SQLType.BIGINT,
    "SERIAL": SQLType.INTEGER,
    "FLOAT": SQLType.FLOAT,
    "REAL": SQLType.FLOAT,
    "DOUBLE": SQLType.DOUBLE,
    "DOUBLE PRECISION": SQLType.DOUBLE,
    "DECIMAL": SQLType.DECIMAL,
    "NUMERIC": SQLType.DECIMAL,
    "VARCHAR": SQLType.VARCHAR,
    "CHARACTER VARYING": SQLType.VARCHAR,
    "CHAR": SQLType.CHAR,
    "CHARACTER": SQLType.CHAR,
    "TEXT": SQLType.TEXT,
    "CLOB": SQLType.TEXT,
    "LONGTEXT": SQLType.TEXT,
    "BOOLEAN": SQLType.BOOLEAN,
    "BOOL": SQLType.BOOLEAN,
    "BIT": SQLType.BOOLEAN,
    "DATE": SQLType.DATE,
    "DATETIME": SQLType.TIMESTAMP,
    "TIMESTAMP": SQLType.TIMESTAMP,
    "BLOB": SQLType.BLOB,
    "LONGBLOB": SQLType.BLOB,
    "BYTEA": SQLType.BLOB,
    "VARBINARY": SQLType.BLOB,
}


def type_from_name(name: str) -> SQLType:
    """Resolve a SQL type name (with aliases such as ``INT`` or ``DATETIME``).

    Raises :class:`SQLTypeError` on unknown names.
    """
    key = name.strip().upper()
    try:
        return _TYPE_ALIASES[key]
    except KeyError:
        raise SQLTypeError(f"unknown SQL type: {name!r}") from None


def coerce_value(value: Any, sql_type: SQLType) -> Any:
    """Coerce ``value`` to the Python representation of ``sql_type``.

    ``None`` (SQL NULL) is always passed through unchanged.
    """
    if value is None:
        return None
    try:
        if sql_type in (SQLType.INTEGER, SQLType.BIGINT):
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if sql_type in (SQLType.FLOAT, SQLType.DOUBLE, SQLType.DECIMAL):
            return float(value)
        if sql_type.is_character:
            if isinstance(value, (bytes, bytearray)):
                return value.decode("utf-8", "replace")
            return str(value)
        if sql_type is SQLType.BOOLEAN:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise SQLTypeError(f"cannot coerce {value!r} to BOOLEAN")
            return bool(value)
        if sql_type is SQLType.DATE:
            if isinstance(value, _dt.datetime):
                return value.date()
            if isinstance(value, _dt.date):
                return value
            if isinstance(value, str):
                return _dt.date.fromisoformat(value.strip())
            raise SQLTypeError(f"cannot coerce {value!r} to DATE")
        if sql_type is SQLType.TIMESTAMP:
            if isinstance(value, _dt.datetime):
                return value
            if isinstance(value, _dt.date):
                return _dt.datetime(value.year, value.month, value.day)
            if isinstance(value, (int, float)):
                return _dt.datetime.fromtimestamp(float(value))
            if isinstance(value, str):
                return _dt.datetime.fromisoformat(value.strip())
            raise SQLTypeError(f"cannot coerce {value!r} to TIMESTAMP")
        if sql_type is SQLType.BLOB:
            if isinstance(value, (bytes, bytearray)):
                return bytes(value)
            if isinstance(value, str):
                return value.encode("utf-8")
            raise SQLTypeError(f"cannot coerce {value!r} to BLOB")
    except (ValueError, TypeError) as exc:
        raise SQLTypeError(
            f"cannot coerce {value!r} to {sql_type.value}: {exc}"
        ) from exc
    raise SQLTypeError(f"unhandled SQL type {sql_type!r}")


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-valued comparison used by WHERE evaluation and ORDER BY.

    Returns ``None`` when either operand is NULL (SQL UNKNOWN), otherwise
    -1, 0 or 1.  Numeric values compare numerically even across int/float;
    strings compare lexicographically; temporal values chronologically.
    """
    if left is None or right is None:
        return None
    left, right = _normalize_pair(left, right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def _normalize_pair(left: Any, right: Any):
    """Make two values comparable, mimicking permissive RDBMS coercion."""
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, (int, float)) and isinstance(right, str):
        right = _string_to_number(right)
    elif isinstance(right, (int, float)) and isinstance(left, str):
        left = _string_to_number(left)
    elif isinstance(left, _dt.datetime) and isinstance(right, _dt.date) and not isinstance(right, _dt.datetime):
        right = _dt.datetime(right.year, right.month, right.day)
    elif isinstance(right, _dt.datetime) and isinstance(left, _dt.date) and not isinstance(left, _dt.datetime):
        left = _dt.datetime(left.year, left.month, left.day)
    elif isinstance(left, (_dt.date, _dt.datetime)) and isinstance(right, str):
        right = coerce_value(right, SQLType.TIMESTAMP if isinstance(left, _dt.datetime) else SQLType.DATE)
    elif isinstance(right, (_dt.date, _dt.datetime)) and isinstance(left, str):
        left = coerce_value(left, SQLType.TIMESTAMP if isinstance(right, _dt.datetime) else SQLType.DATE)
    if type(left) is not type(right) and not (
        isinstance(left, (int, float)) and isinstance(right, (int, float))
    ):
        # Fall back to string comparison rather than raising, like MySQL.
        return str(left), str(right)
    return left, right


def _string_to_number(text: str):
    """Coerce a string to a number for comparison, MySQL-style.

    Non-numeric strings (including the empty string) compare as 0 instead of
    raising, which is what MySQL does and keeps value comparison total.
    """
    stripped = text.strip()
    if not stripped:
        return 0
    try:
        if "." in stripped or "e" in stripped.lower():
            return float(stripped)
        return int(stripped)
    except ValueError:
        try:
            return float(stripped)
        except ValueError:
            return 0


def sort_key(value: Any):
    """Key usable by ``sorted`` that groups NULLs first and mixes types safely."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, _dt.datetime):
        return (2, value.isoformat())
    if isinstance(value, _dt.date):
        return (2, value.isoformat())
    if isinstance(value, bytes):
        return (3, value.decode("utf-8", "replace"))
    return (3, str(value))
