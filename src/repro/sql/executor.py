"""Statement execution for the in-memory SQL engine.

The executor walks the AST produced by :mod:`repro.sql.parser` against the
catalog and storage of a :class:`repro.sql.engine.DatabaseEngine`.  Query
execution is deliberately simple (table scans, hash-index point lookups,
nested-loop joins, in-memory sorts) — the goal is correct SQL semantics for
the TPC-W / RUBiS footprint, not query-optimizer sophistication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, SQLError
from repro.sql import ast
from repro.sql.expressions import ExpressionEvaluator, RowContext
from repro.sql.functions import is_aggregate, make_aggregate
from repro.sql.schema import Column, Index, TableSchema
from repro.sql.storage import Table
from repro.sql.transactions import Transaction
from repro.sql.types import sort_key, type_from_name


@dataclass
class ResultSet:
    """Materialized result of a statement execution.

    ``columns`` is empty for statements that only report an update count
    (INSERT/UPDATE/DELETE/DDL), mirroring JDBC's executeUpdate/executeQuery
    distinction.
    """

    columns: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    update_count: int = -1

    @property
    def is_query_result(self) -> bool:
        return bool(self.columns) or self.update_count < 0

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """First column of the first row, or None for an empty result."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)


class Executor:
    """Executes parsed statements against an engine's catalog and storage."""

    def __init__(self, engine: "repro.sql.engine.DatabaseEngine"):  # noqa: F821
        self._engine = engine
        self._evaluator = ExpressionEvaluator(subquery_executor=self._run_subquery)

    # ------------------------------------------------------------------ public

    def execute(
        self,
        statement: ast.Statement,
        transaction: Transaction,
        parameters: Sequence[Any] = (),
    ) -> ResultSet:
        handler_name = f"_execute_{type(statement).__name__.lower()}"
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise SQLError(f"unsupported statement {type(statement).__name__}")
        return handler(statement, transaction, list(parameters))

    # ------------------------------------------------------------------- DDL

    def _execute_createtable(
        self, statement: ast.CreateTable, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        catalog = self._engine.catalog
        if catalog.has_table(statement.table):
            if statement.if_not_exists:
                return ResultSet(update_count=0)
            raise CatalogError(f"table {statement.table!r} already exists")
        columns = [
            Column.from_definition(
                definition.name,
                definition.type_name,
                definition.length,
                not_null=definition.not_null,
                primary_key=definition.primary_key,
                unique=definition.unique,
                auto_increment=definition.auto_increment,
                default=(
                    definition.default.value
                    if isinstance(definition.default, ast.Literal)
                    else None
                ),
            )
            for definition in statement.columns
        ]
        schema = TableSchema(
            statement.table,
            columns,
            primary_key=statement.primary_key or None,
            temporary=statement.temporary,
        )
        for unique_columns in statement.unique_constraints:
            schema.add_index(
                Index(
                    name=f"uq_{statement.table}_{'_'.join(unique_columns)}",
                    table=statement.table,
                    columns=list(unique_columns),
                    unique=True,
                )
            )
        table = catalog.create_table(schema)
        transaction.record_undo(
            lambda: catalog.drop_table(schema.name, if_exists=True),
            f"undo CREATE TABLE {schema.name}",
        )
        transaction.mark_write()
        return ResultSet(update_count=0)

    def _execute_droptable(
        self, statement: ast.DropTable, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        catalog = self._engine.catalog
        if not catalog.has_table(statement.table):
            if statement.if_exists:
                return ResultSet(update_count=0)
            raise CatalogError(f"unknown table {statement.table!r}")
        dropped = catalog.get_table(statement.table)
        catalog.drop_table(statement.table)
        transaction.record_undo(
            lambda: catalog.restore_table(dropped),
            f"undo DROP TABLE {statement.table}",
        )
        transaction.mark_write()
        return ResultSet(update_count=0)

    def _execute_createindex(
        self, statement: ast.CreateIndex, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        table = self._engine.catalog.get_table(statement.table)
        definition = Index(
            name=statement.name,
            table=statement.table,
            columns=list(statement.columns),
            unique=statement.unique,
        )
        table.create_index(definition)
        transaction.record_undo(
            lambda: table.drop_index(statement.name),
            f"undo CREATE INDEX {statement.name}",
        )
        transaction.mark_write()
        return ResultSet(update_count=0)

    def _execute_dropindex(
        self, statement: ast.DropIndex, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        catalog = self._engine.catalog
        if statement.table:
            tables: Iterable[Table] = [catalog.get_table(statement.table)]
        else:
            tables = catalog.tables()
        for table in tables:
            names = {name.lower() for name in table.indexes}
            if statement.name.lower() in names:
                table.drop_index(statement.name)
                transaction.mark_write()
                return ResultSet(update_count=0)
        raise CatalogError(f"unknown index {statement.name!r}")

    def _execute_altertableaddcolumn(
        self,
        statement: ast.AlterTableAddColumn,
        transaction: Transaction,
        parameters: List[Any],
    ) -> ResultSet:
        table = self._engine.catalog.get_table(statement.table)
        definition = statement.column
        column = Column.from_definition(
            definition.name,
            definition.type_name,
            definition.length,
            not_null=False,  # adding NOT NULL to existing rows would fail
            unique=definition.unique,
            auto_increment=definition.auto_increment,
            default=(
                definition.default.value
                if isinstance(definition.default, ast.Literal)
                else None
            ),
        )
        table.add_column(column)
        transaction.mark_write()
        return ResultSet(update_count=0)

    # ------------------------------------------------------------------- DML

    def _execute_insert(
        self, statement: ast.Insert, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        table = self._engine.catalog.get_table(statement.table)
        self._engine.lock_manager.lock_write(transaction.txn_id, statement.table)
        column_names = statement.columns or table.schema.column_names
        rows_to_insert: List[Dict[str, Any]] = []
        if statement.select is not None:
            select_result = self._execute_select(statement.select, transaction, parameters)
            for row in select_result.rows:
                rows_to_insert.append(dict(zip(column_names, row)))
        else:
            context = RowContext({}, parameters)
            for value_expressions in statement.rows:
                if len(value_expressions) != len(column_names):
                    raise SQLError(
                        f"INSERT into {statement.table!r}: {len(column_names)} columns "
                        f"but {len(value_expressions)} values"
                    )
                values = [
                    self._evaluator.evaluate(expression, context)
                    for expression in value_expressions
                ]
                rows_to_insert.append(dict(zip(column_names, values)))
        inserted = 0
        for raw_row in rows_to_insert:
            coerced = {
                name: table.schema.column(name).coerce(value)
                for name, value in raw_row.items()
            }
            row_id, stored = table.insert_row(coerced)
            for key_column in table.schema.primary_key:
                table.note_explicit_key(key_column, stored.get(key_column))
            transaction.record_undo(
                lambda rid=row_id: table.delete_row(rid),
                f"undo INSERT into {statement.table}",
            )
            inserted += 1
        transaction.mark_write()
        return ResultSet(update_count=inserted)

    def _execute_update(
        self, statement: ast.Update, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        table = self._engine.catalog.get_table(statement.table)
        self._engine.lock_manager.lock_write(transaction.txn_id, statement.table)
        updated = 0
        exposed = statement.table
        for row_id, row in self._matching_rows(table, exposed, statement.where, parameters):
            context = RowContext({exposed: row}, parameters)
            changes: Dict[str, Any] = {}
            for column_name, expression in statement.assignments:
                column = table.schema.column(column_name)
                value = self._evaluator.evaluate(expression, context)
                changes[column.name] = column.coerce(value)
            old_row, _new_row = table.update_row(row_id, changes)
            transaction.record_undo(
                lambda rid=row_id, old=old_row: table.update_row(rid, old),
                f"undo UPDATE {statement.table}",
            )
            updated += 1
        transaction.mark_write()
        return ResultSet(update_count=updated)

    def _execute_delete(
        self, statement: ast.Delete, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        table = self._engine.catalog.get_table(statement.table)
        self._engine.lock_manager.lock_write(transaction.txn_id, statement.table)
        deleted = 0
        victims = list(
            self._matching_rows(table, statement.table, statement.where, parameters)
        )
        for row_id, _row in victims:
            removed = table.delete_row(row_id)
            transaction.record_undo(
                lambda rid=row_id, row=removed: table.restore_row(rid, row),
                f"undo DELETE from {statement.table}",
            )
            deleted += 1
        transaction.mark_write()
        return ResultSet(update_count=deleted)

    # ---------------------------------------------------------------- SELECT

    def _execute_select(
        self, statement: ast.Select, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        return self._run_select(statement, parameters, transaction, outer_context=None)

    def _run_subquery(self, select: ast.Select, outer_context: RowContext) -> List[List[Any]]:
        result = self._run_select(
            select, outer_context.parameters, transaction=None, outer_context=outer_context
        )
        return result.rows

    def _run_select(
        self,
        statement: ast.Select,
        parameters: Sequence[Any],
        transaction: Optional[Transaction],
        outer_context: Optional[RowContext],
    ) -> ResultSet:
        # 1. FROM / JOIN: build the stream of joined row contexts.
        joined_rows = self._build_from_rows(statement, parameters, transaction, outer_context)

        # 2. WHERE
        if statement.where is not None:
            joined_rows = [
                tables
                for tables in joined_rows
                if self._evaluator.evaluate_predicate(
                    statement.where, RowContext(tables, parameters, outer_context)
                )
            ]

        # 3. aggregate / group by, or plain projection.  ``sources`` keeps, for
        # each output row, the data needed to evaluate ORDER BY expressions
        # that reference columns absent from the select list.
        has_aggregate = any(
            _contains_aggregate(item.expression) for item in statement.items
        ) or any(_contains_aggregate(expr) for expr in [statement.having] if expr)
        grouped = bool(statement.group_by) or has_aggregate
        if grouped:
            columns, rows, sources = self._project_grouped(
                statement, joined_rows, parameters, outer_context
            )
        else:
            columns, rows, sources = self._project_plain(
                statement, joined_rows, parameters, outer_context
            )

        # 4. DISTINCT
        if statement.distinct:
            seen = set()
            unique_rows = []
            unique_sources = []
            for row, source in zip(rows, sources):
                key = tuple(sort_key(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
                    unique_sources.append(source)
            rows, sources = unique_rows, unique_sources

        # 5. ORDER BY
        if statement.order_by:
            rows = self._order_rows(
                statement, columns, rows, sources, grouped, parameters, outer_context
            )

        # 6. LIMIT / OFFSET
        rows = self._apply_limit(statement, rows, parameters)
        return ResultSet(columns=columns, rows=rows)

    # -- FROM/JOIN ------------------------------------------------------------

    def _build_from_rows(
        self,
        statement: ast.Select,
        parameters: Sequence[Any],
        transaction: Optional[Transaction],
        outer_context: Optional[RowContext],
    ) -> List[Dict[str, Dict[str, Any]]]:
        if statement.from_table is None:
            return [{}]
        base = self._scan_table(statement.from_table, transaction)
        joined: List[Dict[str, Dict[str, Any]]] = [
            {statement.from_table.exposed_name: row} for row in base
        ]
        for join in statement.joins:
            right_rows = self._scan_table(join.table, transaction)
            exposed = join.table.exposed_name
            new_joined: List[Dict[str, Dict[str, Any]]] = []
            for left_tables in joined:
                matched = False
                for right_row in right_rows:
                    candidate = dict(left_tables)
                    candidate[exposed] = right_row
                    if join.condition is None or self._evaluator.evaluate_predicate(
                        join.condition, RowContext(candidate, parameters, outer_context)
                    ):
                        new_joined.append(candidate)
                        matched = True
                if join.kind == "LEFT" and not matched:
                    candidate = dict(left_tables)
                    candidate[exposed] = {
                        column: None
                        for column in self._engine.catalog.get_table(
                            join.table.name
                        ).schema.column_names
                    }
                    new_joined.append(candidate)
            joined = new_joined
        return joined

    def _scan_table(
        self, table_ref: ast.TableRef, transaction: Optional[Transaction]
    ) -> List[Dict[str, Any]]:
        # Reads take a snapshot of the rows instead of holding table read
        # locks until commit: this gives read-committed semantics per
        # statement, which matches what the middleware expects from its
        # backends (C-JDBC never relies on backend read locks across
        # statements — write ordering is enforced by the scheduler).
        table = self._engine.catalog.get_table(table_ref.name)
        return [dict(row) for _row_id, row in table.rows()]

    def _matching_rows(
        self,
        table: Table,
        exposed_name: str,
        where: Optional[ast.Expression],
        parameters: Sequence[Any],
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Rows of ``table`` matching ``where``; uses a point index when easy."""
        candidates = self._index_candidates(table, where, parameters)
        if candidates is None:
            candidates = list(table.rows())
        if where is None:
            return list(candidates)
        matches = []
        for row_id, row in candidates:
            context = RowContext({exposed_name: row, table.schema.name: row}, parameters)
            if self._evaluator.evaluate_predicate(where, context):
                matches.append((row_id, row))
        return matches

    def _index_candidates(
        self,
        table: Table,
        where: Optional[ast.Expression],
        parameters: Sequence[Any],
    ) -> Optional[List[Tuple[int, Dict[str, Any]]]]:
        """Use a single-column unique/hash index for ``col = literal`` filters."""
        if where is None:
            return None
        equalities = _extract_equalities(where, parameters)
        if not equalities:
            return None
        for column_name, value in equalities.items():
            index = table.find_by_index([column_name], (value,))
            if index is not None:
                row_ids = index.lookup((value,))
                return [
                    (row_id, table.get_row(row_id))
                    for row_id in row_ids
                    if table.get_row(row_id) is not None
                ]
        return None

    # -- projection ------------------------------------------------------------

    def _projected_columns(
        self, statement: ast.Select, sample_tables: Optional[Dict[str, Dict[str, Any]]]
    ) -> List[Tuple[str, ast.Expression]]:
        """Expand ``*`` and name every output column."""
        projected: List[Tuple[str, ast.Expression]] = []
        for item in statement.items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                projected.extend(self._expand_star(statement, expression))
                continue
            name = item.alias or _default_column_name(expression)
            projected.append((name, expression))
        return projected

    def _expand_star(
        self, statement: ast.Select, star: ast.Star
    ) -> List[Tuple[str, ast.Expression]]:
        expanded: List[Tuple[str, ast.Expression]] = []
        table_refs: List[ast.TableRef] = []
        if statement.from_table is not None:
            table_refs.append(statement.from_table)
        table_refs.extend(join.table for join in statement.joins)
        for table_ref in table_refs:
            if star.table and star.table.lower() != table_ref.exposed_name.lower():
                continue
            schema = self._engine.catalog.get_table(table_ref.name).schema
            for column in schema.column_names:
                expanded.append(
                    (column, ast.ColumnRef(column, table_ref.exposed_name))
                )
        if not expanded:
            raise SQLError("SELECT * with no FROM clause")
        return expanded

    def _project_plain(
        self,
        statement: ast.Select,
        joined_rows: List[Dict[str, Dict[str, Any]]],
        parameters: Sequence[Any],
        outer_context: Optional[RowContext],
    ) -> Tuple[List[str], List[List[Any]], List[Any]]:
        projected = self._projected_columns(statement, joined_rows[0] if joined_rows else None)
        columns = [name for name, _expr in projected]
        rows = []
        sources: List[Any] = []
        for tables in joined_rows:
            context = RowContext(tables, parameters, outer_context)
            rows.append(
                [self._evaluator.evaluate(expression, context) for _name, expression in projected]
            )
            sources.append(tables)
        return columns, rows, sources

    def _project_grouped(
        self,
        statement: ast.Select,
        joined_rows: List[Dict[str, Dict[str, Any]]],
        parameters: Sequence[Any],
        outer_context: Optional[RowContext],
    ) -> Tuple[List[str], List[List[Any]], List[Any]]:
        projected = self._projected_columns(statement, joined_rows[0] if joined_rows else None)
        columns = [name for name, _expr in projected]

        # Partition rows into groups.
        groups: Dict[Tuple, List[Dict[str, Dict[str, Any]]]] = {}
        ordered_keys: List[Tuple] = []
        for tables in joined_rows:
            context = RowContext(tables, parameters, outer_context)
            if statement.group_by:
                key = tuple(
                    sort_key(self._evaluator.evaluate(expr, context))
                    for expr in statement.group_by
                )
            else:
                key = ()
            if key not in groups:
                groups[key] = []
                ordered_keys.append(key)
            groups[key].append(tables)
        if not statement.group_by and not groups:
            groups[()] = []
            ordered_keys.append(())

        rows: List[List[Any]] = []
        sources: List[Any] = []
        for key in ordered_keys:
            group_rows = groups[key]
            row_values: List[Any] = []
            for _name, expression in projected:
                row_values.append(
                    self._evaluate_with_aggregates(
                        expression, group_rows, parameters, outer_context
                    )
                )
            if statement.having is not None:
                having_value = self._evaluate_with_aggregates(
                    statement.having, group_rows, parameters, outer_context
                )
                if having_value is not True:
                    continue
            rows.append(row_values)
            sources.append(group_rows)
        return columns, rows, sources

    def _evaluate_with_aggregates(
        self,
        expression: ast.Expression,
        group_rows: List[Dict[str, Dict[str, Any]]],
        parameters: Sequence[Any],
        outer_context: Optional[RowContext],
    ) -> Any:
        """Evaluate an expression that may contain aggregate calls over a group."""
        if isinstance(expression, ast.FunctionCall) and is_aggregate(expression.name):
            count_star = bool(expression.args) and isinstance(expression.args[0], ast.Star)
            aggregate = make_aggregate(
                expression.name, count_star=count_star or not expression.args,
                distinct=expression.distinct,
            )
            for tables in group_rows:
                context = RowContext(tables, parameters, outer_context)
                if count_star or not expression.args:
                    aggregate.add(1)
                else:
                    aggregate.add(self._evaluator.evaluate(expression.args[0], context))
            return aggregate.result()
        if isinstance(expression, ast.BinaryOp):
            left = self._evaluate_with_aggregates(
                expression.left, group_rows, parameters, outer_context
            )
            right = self._evaluate_with_aggregates(
                expression.right, group_rows, parameters, outer_context
            )
            return self._evaluator.evaluate(
                ast.BinaryOp(expression.operator, ast.Literal(left), ast.Literal(right)),
                RowContext({}, parameters, outer_context),
            )
        if isinstance(expression, ast.UnaryOp):
            operand = self._evaluate_with_aggregates(
                expression.operand, group_rows, parameters, outer_context
            )
            return self._evaluator.evaluate(
                ast.UnaryOp(expression.operator, ast.Literal(operand)),
                RowContext({}, parameters, outer_context),
            )
        # Non-aggregate expression inside a grouped query: evaluate it against
        # the first row of the group (SQL permits this for GROUP BY columns).
        if group_rows:
            context = RowContext(group_rows[0], parameters, outer_context)
        else:
            context = RowContext({}, parameters, outer_context)
        return self._evaluator.evaluate(expression, context)

    # -- ORDER BY / LIMIT -------------------------------------------------------

    def _order_rows(
        self,
        statement: ast.Select,
        columns: List[str],
        rows: List[List[Any]],
        sources: List[Any],
        grouped: bool,
        parameters: Sequence[Any],
        outer_context: Optional[RowContext],
    ) -> List[List[Any]]:
        column_positions = {name.lower(): position for position, name in enumerate(columns)}
        decorated = []
        for row, source in zip(rows, sources):
            key = []
            for item in statement.order_by:
                value = self._order_value(
                    item.expression,
                    row,
                    column_positions,
                    source,
                    grouped,
                    parameters,
                    outer_context,
                )
                entry = sort_key(value)
                if item.descending:
                    entry = _DescendingKey(entry)
                key.append(entry)
            decorated.append((key, row))
        decorated.sort(key=lambda pair: pair[0])
        return [row for _key, row in decorated]

    def _order_value(
        self,
        expression: ast.Expression,
        row: List[Any],
        column_positions: Dict[str, int],
        source: Any,
        grouped: bool,
        parameters: Sequence[Any],
        outer_context: Optional[RowContext],
    ) -> Any:
        # 1. an output column name or alias
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            position = column_positions.get(expression.name.lower())
            if position is not None:
                return row[position]
        # 2. ORDER BY ordinal (1-based)
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            position = expression.value - 1
            if 0 <= position < len(row):
                return row[position]
        # 3. an arbitrary expression over the source rows
        try:
            if grouped:
                return self._evaluate_with_aggregates(
                    expression, source, parameters, outer_context
                )
            context = RowContext(source, parameters, outer_context)
            return self._evaluator.evaluate(expression, context)
        except SQLError:
            # Expression cannot be resolved (e.g. alias of an expression after
            # DISTINCT); order such rows as NULLs instead of failing.
            return None

    def _apply_limit(
        self, statement: ast.Select, rows: List[List[Any]], parameters: Sequence[Any]
    ) -> List[List[Any]]:
        if statement.limit is None and statement.offset is None:
            return rows
        context = RowContext({}, parameters)
        offset = 0
        if statement.offset is not None:
            offset = int(self._evaluator.evaluate(statement.offset, context) or 0)
        if statement.limit is not None:
            limit = int(self._evaluator.evaluate(statement.limit, context))
            return rows[offset : offset + limit]
        return rows[offset:]

    # ------------------------------------------------------------ transactions

    def _execute_begintransaction(
        self, statement: ast.BeginTransaction, transaction: Transaction, parameters: List[Any]
    ) -> ResultSet:
        # Transaction statements are handled by the connection layer; reaching
        # this point means someone executed "BEGIN" through raw execute().
        return ResultSet(update_count=0)

    _execute_commit = _execute_begintransaction
    _execute_rollback = _execute_begintransaction


class _DescendingKey:
    """Wraps a sort key to invert its ordering."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_DescendingKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescendingKey) and other.key == self.key


def _default_column_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name.upper()
    if isinstance(expression, ast.Literal):
        return str(expression.value)
    return "expr"


def _contains_aggregate(expression: Optional[ast.Expression]) -> bool:
    if expression is None:
        return False
    if isinstance(expression, ast.FunctionCall):
        if is_aggregate(expression.name):
            return True
        return any(_contains_aggregate(argument) for argument in expression.args)
    if isinstance(expression, ast.BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, ast.UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, ast.CaseExpression):
        return any(
            _contains_aggregate(condition) or _contains_aggregate(value)
            for condition, value in expression.whens
        ) or _contains_aggregate(expression.default)
    return False


def _extract_equalities(
    where: ast.Expression, parameters: Sequence[Any]
) -> Dict[str, Any]:
    """Collect top-level ``column = constant`` conjuncts for index lookups."""
    equalities: Dict[str, Any] = {}

    def visit(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp):
            if node.operator == "AND":
                visit(node.left)
                visit(node.right)
                return
            if node.operator == "=":
                column, value = None, _MISSING
                if isinstance(node.left, ast.ColumnRef):
                    column = node.left.name
                    value = _constant_value(node.right, parameters)
                elif isinstance(node.right, ast.ColumnRef):
                    column = node.right.name
                    value = _constant_value(node.left, parameters)
                if column is not None and value is not _MISSING:
                    equalities[column] = value

    visit(where)
    return equalities


_MISSING = object()


def _constant_value(node: ast.Expression, parameters: Sequence[Any]) -> Any:
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.Parameter):
        if node.index < len(parameters):
            return parameters[node.index]
    return _MISSING
