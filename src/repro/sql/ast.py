"""Abstract syntax tree node definitions for the SQL dialect.

Expression nodes and statement nodes are plain dataclasses; the executor
pattern-matches on their types.  Nodes deliberately carry no behaviour beyond
``__repr__`` so they stay easy to construct in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expression nodes."""


@dataclass
class Literal(Expression):
    value: Any


@dataclass
class Parameter(Expression):
    """A positional parameter marker (``?`` / ``%s``)."""

    index: int


@dataclass
class ColumnRef(Expression):
    """A (possibly table-qualified) column reference."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass
class UnaryOp(Expression):
    operator: str  # '-', '+', 'NOT'
    operand: Expression


@dataclass
class BinaryOp(Expression):
    operator: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%',
    #                'AND', 'OR', 'LIKE', 'NOT LIKE', '||'
    left: Expression
    right: Expression


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: List[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expression):
    operand: Expression
    subquery: "Select" = None
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class FunctionCall(Expression):
    """Scalar or aggregate function call, e.g. ``NOW()``, ``COUNT(*)``."""

    name: str
    args: List[Expression] = field(default_factory=list)
    distinct: bool = False

    @property
    def upper_name(self) -> str:
        return self.name.upper()


@dataclass
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: List[Tuple[Expression, Expression]] = field(default_factory=list)
    default: Optional[Expression] = None


@dataclass
class ExistsSubquery(Expression):
    subquery: "Select" = None
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    """A parenthesised ``SELECT`` used as a scalar value."""

    subquery: "Select" = None


# ---------------------------------------------------------------------------
# SELECT support nodes
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One entry of the select list with an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A table in the FROM clause with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def exposed_name(self) -> str:
        return self.alias or self.name


@dataclass
class Join:
    """A join clause attached to the previous table reference."""

    kind: str  # 'INNER', 'LEFT', 'CROSS'
    table: TableRef
    condition: Optional[Expression] = None


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement nodes."""


@dataclass
class Select(Statement):
    items: List[SelectItem] = field(default_factory=list)
    from_table: Optional[TableRef] = None
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False

    def referenced_tables(self) -> List[str]:
        tables = []
        if self.from_table is not None:
            tables.append(self.from_table.name)
        tables.extend(join.table.name for join in self.joins)
        return tables


@dataclass
class Insert(Statement):
    table: str
    columns: List[str] = field(default_factory=list)
    rows: List[List[Expression]] = field(default_factory=list)
    select: Optional[Select] = None


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class ColumnDef:
    name: str
    type_name: str
    length: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    auto_increment: bool = False
    default: Optional[Expression] = None


@dataclass
class CreateTable(Statement):
    table: str
    columns: List[ColumnDef] = field(default_factory=list)
    primary_key: List[str] = field(default_factory=list)
    unique_constraints: List[List[str]] = field(default_factory=list)
    if_not_exists: bool = False
    temporary: bool = False


@dataclass
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: List[str] = field(default_factory=list)
    unique: bool = False


@dataclass
class DropIndex(Statement):
    name: str
    table: Optional[str] = None


@dataclass
class AlterTableAddColumn(Statement):
    table: str
    column: ColumnDef = None


@dataclass
class BeginTransaction(Statement):
    pass


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass
