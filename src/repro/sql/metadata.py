"""DatabaseMetaData equivalent for the in-memory engine.

In the paper (§2.4.3), load balancers supporting partial replication learn
each backend's schema dynamically by calling the JDBC ``DatabaseMetaData``
methods of the backend's native driver when the backend is enabled.  This
module provides the same introspection surface for our engine so the
middleware's schema-gathering code path is exercised for real.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sql.engine import DatabaseEngine


class DatabaseMetaData:
    """Schema introspection over one engine, JDBC-method-named."""

    def __init__(self, engine: DatabaseEngine):
        self._engine = engine

    def get_tables(self, table_name_pattern: Optional[str] = None) -> List[Dict[str, Any]]:
        """Like ``DatabaseMetaData.getTables``: one dict per table."""
        tables = []
        for name in self._engine.catalog.table_names():
            if table_name_pattern and not _pattern_match(name, table_name_pattern):
                continue
            tables.append(self._engine.catalog.get_table(name).schema.describe())
        return tables

    def get_table_names(self) -> List[str]:
        return self._engine.catalog.table_names()

    def get_columns(self, table_name: str) -> List[Dict[str, Any]]:
        """Like ``DatabaseMetaData.getColumns`` for one table."""
        schema = self._engine.catalog.get_table(table_name).schema
        columns = []
        for position, column in enumerate(schema.columns, start=1):
            info = column.describe()
            info["TABLE_NAME"] = schema.name
            info["ORDINAL_POSITION"] = position
            columns.append(info)
        return columns

    def get_primary_keys(self, table_name: str) -> List[str]:
        """Like ``DatabaseMetaData.getPrimaryKeys``."""
        return list(self._engine.catalog.get_table(table_name).schema.primary_key)

    def get_indexes(self, table_name: str) -> List[Dict[str, Any]]:
        """Like ``DatabaseMetaData.getIndexInfo``."""
        schema = self._engine.catalog.get_table(table_name).schema
        return [
            {
                "INDEX_NAME": index.name,
                "COLUMNS": list(index.columns),
                "NON_UNIQUE": not index.unique,
            }
            for index in schema.indexes.values()
        ]

    def get_database_product_name(self) -> str:
        return "repro-sql"

    def get_database_product_version(self) -> str:
        return "1.0"


def _pattern_match(name: str, pattern: str) -> bool:
    """SQL metadata patterns use ``%`` and ``_`` wildcards."""
    import re

    regex = "^" + "".join(
        ".*" if c == "%" else "." if c == "_" else re.escape(c) for c in pattern
    ) + "$"
    return re.match(regex, name, re.IGNORECASE) is not None
