"""PEP 249 (DB-API 2.0) driver for the in-memory engine.

This module plays the role of the *native JDBC driver* in the paper: the
C-JDBC controller accesses each database backend through its native driver,
and our middleware accesses each :class:`repro.sql.engine.DatabaseEngine`
through this module.  The interface is the standard DB-API:

>>> from repro.sql import dbapi
>>> connection = dbapi.connect(engine)
>>> cursor = connection.cursor()
>>> cursor.execute("SELECT 1")

The same interface is implemented by the C-JDBC client driver
(:mod:`repro.core.driver`), which is what allows controllers to be nested
for vertical scalability: a controller cannot tell whether its "native
driver" talks to a real engine or to another controller.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import (
    DatabaseError,
    InterfaceError,
    ProgrammingError,
    SQLError,
    SQLSyntaxError,
)
from repro.sql.engine import DatabaseEngine, Session
from repro.sql.executor import ResultSet

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


def connect(engine: DatabaseEngine, user: str = "", password: str = "") -> "Connection":
    """Open a connection to ``engine``.

    ``user``/``password`` are accepted for interface parity with real
    drivers; the in-memory engine itself does not enforce authentication
    (the middleware's authentication manager does).
    """
    return Connection(engine, user=user)


class Connection:
    """A DB-API connection bound to one engine session."""

    def __init__(self, engine: DatabaseEngine, user: str = ""):
        self._engine = engine
        self._session: Optional[Session] = engine.create_session()
        self.user = user
        self._lock = threading.RLock()
        self._autocommit = True

    # -- properties -------------------------------------------------------------

    @property
    def engine(self) -> DatabaseEngine:
        return self._engine

    @property
    def closed(self) -> bool:
        return self._session is None

    @property
    def autocommit(self) -> bool:
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self._check_open()
        self._autocommit = bool(value)
        if not value:
            self._session.begin()
        else:
            # Turning autocommit back on commits any open transaction, the
            # behaviour mandated by JDBC's setAutoCommit(true).
            self._session.commit()

    # -- transaction control -----------------------------------------------------

    def begin(self) -> None:
        self._check_open()
        self._autocommit = False
        self._session.begin()

    def commit(self) -> None:
        self._check_open()
        self._session.commit()
        if not self._autocommit:
            self._session.begin()

    def rollback(self) -> None:
        self._check_open()
        self._session.rollback()
        if not self._autocommit:
            self._session.begin()

    def close(self) -> None:
        if self._session is not None:
            self._session.close()
            self._session = None

    # -- cursors ------------------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "Cursor":
        """Convenience: create a cursor, execute, and return it."""
        cursor = self.cursor()
        cursor.execute(sql, parameters)
        return cursor

    # -- internals ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._session is None:
            raise InterfaceError("connection is closed")

    def _run(self, sql: str, parameters: Sequence[Any]) -> ResultSet:
        self._check_open()
        with self._lock:
            try:
                result = self._session.execute(sql, parameters)
            except SQLSyntaxError as exc:
                raise ProgrammingError(str(exc)) from exc
            except SQLError as exc:
                raise DatabaseError(str(exc)) from exc
            self._engine.note_statement(sql)
            return result

    def _run_many(
        self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> Optional[ResultSet]:
        """Parse once, execute per parameter set, aggregate update counts.

        Returns the last result with the aggregated update count, or None
        when the sequence was empty.
        """
        self._check_open()
        from repro.sql.parser import parse

        with self._lock:
            try:
                statement = parse(sql)
                result: Optional[ResultSet] = None
                total = 0
                for parameters in seq_of_parameters:
                    result = self._session.execute_statement(statement, parameters)
                    self._engine.note_statement(sql)
                    if result.update_count > 0:
                        total += result.update_count
            except SQLSyntaxError as exc:
                raise ProgrammingError(str(exc)) from exc
            except SQLError as exc:
                raise DatabaseError(str(exc)) from exc
            if result is not None:
                result.update_count = total
            return result

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            try:
                self.commit()
            except InterfaceError:
                pass
        else:
            try:
                self.rollback()
            except InterfaceError:
                pass
        self.close()


class Cursor:
    """A DB-API cursor; also doubles as the JDBC ResultSet equivalent."""

    arraysize = 1

    def __init__(self, connection: Connection):
        self._connection = connection
        self._result: Optional[ResultSet] = None
        self._position = 0
        self._closed = False

    # -- metadata ---------------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple]]:
        if self._result is None or not self._result.columns:
            return None
        return [
            (name, None, None, None, None, None, None)
            for name in self._result.columns
        ]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        if self._result.columns:
            return len(self._result.rows)
        return self._result.update_count

    @property
    def columns(self) -> List[str]:
        return list(self._result.columns) if self._result else []

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "Cursor":
        self._check_open()
        self._result = self._connection._run(sql, parameters)
        self._position = 0
        return self

    def executemany(self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]) -> "Cursor":
        """Execute ``sql`` once per parameter set, parsing it only once.

        This is the engine-side half of server-side batching: the statement
        is parsed a single time and the resulting plan is re-executed for
        every parameter set, so a controller batch pays per-row execution
        cost only, not per-row parsing.  An empty sequence executes nothing
        and reports an update count of zero.
        """
        self._check_open()
        result = self._connection._run_many(sql, seq_of_parameters)
        if result is None:
            # nothing executed: report zero, never the previous statement's
            # stale result
            result = ResultSet(update_count=0)
        self._result = result
        self._position = 0
        return self

    # -- fetching -------------------------------------------------------------------

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._check_has_result()
        if self._position >= len(self._result.rows):
            return None
        row = tuple(self._result.rows[self._position])
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        self._check_has_result()
        count = size if size is not None else self.arraysize
        rows = []
        for _ in range(count):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        self._check_has_result()
        rows = [tuple(row) for row in self._result.rows[self._position :]]
        self._position = len(self._result.rows)
        return rows

    def fetchall_dicts(self) -> List[dict]:
        """Extension: rows as dicts keyed by column name."""
        self._check_has_result()
        return self._result.as_dicts()

    def scalar(self) -> Any:
        """Extension: first column of first row (None when empty)."""
        self._check_has_result()
        return self._result.scalar()

    # -- misc ---------------------------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # pragma: no cover - DB-API stub
        return None

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover
        return None

    def close(self) -> None:
        self._closed = True
        self._result = None

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- internals -------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

    def _check_has_result(self) -> None:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement executed yet")
