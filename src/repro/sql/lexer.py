"""SQL tokenizer.

Splits SQL text into a stream of :class:`Token` objects consumed by the
recursive-descent parser.  The dialect covers the subset used by the TPC-W
and RUBiS workloads plus the DDL needed by the middleware (schema discovery,
checkpointing): identifiers (optionally quoted with ``"`` or backticks),
string literals with ``''`` escaping, numeric literals, parameter markers
(``?`` and ``%s``), operators and punctuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List

from repro.errors import SQLSyntaxError


class TokenType(Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    STRING = "STRING"
    NUMBER = "NUMBER"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    PARAMETER = "PARAMETER"
    EOF = "EOF"


#: Words recognized as keywords (case-insensitive).  Anything else is an
#: identifier.  Keeping this list explicit avoids misclassifying column names.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT IN IS NULL LIKE BETWEEN EXISTS
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE DROP ALTER ADD INDEX UNIQUE PRIMARY KEY FOREIGN REFERENCES
    IF
    BEGIN START TRANSACTION COMMIT ROLLBACK WORK
    JOIN INNER LEFT RIGHT OUTER CROSS ON USING
    GROUP BY ORDER HAVING ASC DESC LIMIT OFFSET
    DISTINCT ALL AS UNION
    CASE WHEN THEN ELSE END
    DEFAULT AUTO_INCREMENT NOT
    TRUE FALSE
    COUNT SUM AVG MIN MAX
    """.split()
)

_MULTI_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")
_SINGLE_CHAR_OPERATORS = set("=<>+-*/%")
_PUNCTUATION = set("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str = None) -> bool:
        if self.type is not token_type:
            return False
        if value is None:
            return True
        return self.value.upper() == value.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` and return the token list terminated by an EOF token."""
    return list(_iter_tokens(sql))


def _iter_tokens(sql: str) -> Iterator[Token]:
    i = 0
    length = len(sql)
    while i < length:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        # -- comments and /* */ comments
        if char == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if char == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SQLSyntaxError(f"unterminated comment at position {i}")
            i = end + 2
            continue
        if char == "'":
            value, i = _read_string(sql, i)
            yield Token(TokenType.STRING, value, i)
            continue
        if char in ('"', "`"):
            value, i = _read_quoted_identifier(sql, i, char)
            yield Token(TokenType.IDENTIFIER, value, i)
            continue
        if char.isdigit() or (
            char == "." and i + 1 < length and sql[i + 1].isdigit()
        ):
            value, i = _read_number(sql, i)
            yield Token(TokenType.NUMBER, value, i)
            continue
        if char == "?":
            yield Token(TokenType.PARAMETER, "?", i)
            i += 1
            continue
        if char == "%" and sql.startswith("%s", i):
            yield Token(TokenType.PARAMETER, "%s", i)
            i += 2
            continue
        if char.isalpha() or char == "_":
            value, i = _read_word(sql, i)
            if value.upper() in KEYWORDS:
                yield Token(TokenType.KEYWORD, value.upper(), i)
            else:
                yield Token(TokenType.IDENTIFIER, value, i)
            continue
        multi = sql[i : i + 2]
        if multi in _MULTI_CHAR_OPERATORS:
            yield Token(TokenType.OPERATOR, multi, i)
            i += 2
            continue
        if char in _SINGLE_CHAR_OPERATORS:
            yield Token(TokenType.OPERATOR, char, i)
            i += 1
            continue
        if char in _PUNCTUATION:
            yield Token(TokenType.PUNCTUATION, char, i)
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {char!r} at position {i}")
    yield Token(TokenType.EOF, "", length)


def _read_string(sql: str, start: int):
    """Read a single-quoted string literal with ``''`` escaping."""
    i = start + 1
    parts: List[str] = []
    while i < len(sql):
        char = sql[i]
        if char == "'":
            if i + 1 < len(sql) and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        if char == "\\" and i + 1 < len(sql) and sql[i + 1] in ("'", "\\"):
            parts.append(sql[i + 1])
            i += 2
            continue
        parts.append(char)
        i += 1
    raise SQLSyntaxError(f"unterminated string literal starting at {start}")


def _read_quoted_identifier(sql: str, start: int, quote: str):
    end = sql.find(quote, start + 1)
    if end == -1:
        raise SQLSyntaxError(f"unterminated quoted identifier starting at {start}")
    return sql[start + 1 : end], end + 1


def _read_number(sql: str, start: int):
    i = start
    seen_dot = False
    seen_exp = False
    while i < len(sql):
        char = sql[i]
        if char.isdigit():
            i += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif char in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < len(sql) and sql[i] in "+-":
                i += 1
        else:
            break
    return sql[start:i], i


def _read_word(sql: str, start: int):
    i = start
    while i < len(sql) and (sql[i].isalnum() or sql[i] in "_$"):
        i += 1
    return sql[start:i], i
