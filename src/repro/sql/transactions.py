"""Transaction support for the in-memory engine.

Each connection to the engine runs inside a :class:`Transaction`.  The engine
uses per-table reader/writer locks with a wait-die style timeout and an undo
log so that ``ROLLBACK`` restores the pre-transaction state.  This mirrors
what the InnoDB backends give C-JDBC in the paper: the middleware itself
never needs row-level detail, it only relies on the backend enforcing
transactional semantics.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import LockTimeoutError, TransactionError


@dataclass
class UndoRecord:
    """One inverse operation recorded while a transaction executes."""

    undo: Callable[[], None]
    description: str = ""


class TableLock:
    """A reader/writer lock for one table with timeout support."""

    def __init__(self, table_name: str):
        self.table_name = table_name
        self._condition = threading.Condition()
        self._readers: Set[int] = set()
        self._writer: Optional[int] = None
        self._writer_depth = 0

    def acquire_read(self, txn_id: int, timeout: float) -> None:
        with self._condition:
            deadline = _deadline(timeout)
            while not self._can_read(txn_id):
                if not self._wait(deadline):
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for read lock "
                        f"on {self.table_name!r} (writer={self._writer})"
                    )
            self._readers.add(txn_id)

    def acquire_write(self, txn_id: int, timeout: float) -> None:
        with self._condition:
            deadline = _deadline(timeout)
            while not self._can_write(txn_id):
                if not self._wait(deadline):
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for write lock "
                        f"on {self.table_name!r} (writer={self._writer}, "
                        f"readers={sorted(self._readers)})"
                    )
            self._writer = txn_id
            self._writer_depth += 1
            self._readers.discard(txn_id)

    def release_all(self, txn_id: int) -> None:
        with self._condition:
            self._readers.discard(txn_id)
            if self._writer == txn_id:
                self._writer = None
                self._writer_depth = 0
            self._condition.notify_all()

    def _can_read(self, txn_id: int) -> bool:
        return self._writer is None or self._writer == txn_id

    def _can_write(self, txn_id: int) -> bool:
        if self._writer is not None and self._writer != txn_id:
            return False
        other_readers = self._readers - {txn_id}
        return not other_readers

    def _wait(self, deadline: Optional[float]) -> bool:
        if deadline is None:
            self._condition.wait()
            return True
        import time

        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        self._condition.wait(remaining)
        return True


def _deadline(timeout: float) -> Optional[float]:
    if timeout is None or timeout <= 0:
        return None
    import time

    return time.monotonic() + timeout


class LockManager:
    """Hands out per-table locks and remembers which transaction holds what."""

    def __init__(self, lock_timeout: float = 5.0):
        self.lock_timeout = lock_timeout
        self._locks: Dict[str, TableLock] = {}
        self._held: Dict[int, Set[str]] = {}
        self._mutex = threading.Lock()

    def _lock_for(self, table_name: str) -> TableLock:
        key = table_name.lower()
        with self._mutex:
            lock = self._locks.get(key)
            if lock is None:
                lock = TableLock(table_name)
                self._locks[key] = lock
            return lock

    def lock_read(self, txn_id: int, table_name: str) -> None:
        self._lock_for(table_name).acquire_read(txn_id, self.lock_timeout)
        with self._mutex:
            self._held.setdefault(txn_id, set()).add(table_name.lower())

    def lock_write(self, txn_id: int, table_name: str) -> None:
        self._lock_for(table_name).acquire_write(txn_id, self.lock_timeout)
        with self._mutex:
            self._held.setdefault(txn_id, set()).add(table_name.lower())

    def release(self, txn_id: int) -> None:
        with self._mutex:
            held = self._held.pop(txn_id, set())
            locks = [self._locks[name] for name in held if name in self._locks]
        for lock in locks:
            lock.release_all(txn_id)

    def drop_table(self, table_name: str) -> None:
        with self._mutex:
            self._locks.pop(table_name.lower(), None)


class Transaction:
    """State of one in-flight transaction: undo log + statistics."""

    _ids = itertools.count(1)

    def __init__(self, autocommit: bool = True):
        self.txn_id = next(Transaction._ids)
        self.autocommit = autocommit
        self.active = False
        self.readonly_so_far = True
        self.undo_log: List[UndoRecord] = []
        self.statements_executed = 0

    def begin(self) -> None:
        if self.active:
            raise TransactionError("transaction already started")
        self.active = True
        self.readonly_so_far = True
        self.undo_log.clear()

    def record_undo(self, undo: Callable[[], None], description: str = "") -> None:
        if self.active:
            self.undo_log.append(UndoRecord(undo, description))

    def mark_write(self) -> None:
        self.readonly_so_far = False

    def commit(self) -> None:
        if not self.active:
            raise TransactionError("commit without an active transaction")
        self.undo_log.clear()
        self.active = False

    def rollback(self) -> None:
        if not self.active:
            raise TransactionError("rollback without an active transaction")
        for record in reversed(self.undo_log):
            record.undo()
        self.undo_log.clear()
        self.active = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "idle"
        return f"Transaction(id={self.txn_id}, {state}, undo={len(self.undo_log)})"
