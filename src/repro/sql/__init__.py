"""In-memory SQL database engine: the backend substrate.

This package stands in for the MySQL / PostgreSQL / Firebird backends of the
paper.  Public entry points:

* :class:`repro.sql.engine.DatabaseEngine` — one backend database server;
* :func:`repro.sql.dbapi.connect` — its "native driver" (DB-API 2.0);
* :class:`repro.sql.metadata.DatabaseMetaData` — schema introspection used by
  the middleware's partial-replication load balancers.
"""

from repro.sql.engine import DatabaseEngine
from repro.sql.executor import ResultSet
from repro.sql.metadata import DatabaseMetaData
from repro.sql.parser import parse, parse_expression

__all__ = [
    "DatabaseEngine",
    "DatabaseMetaData",
    "ResultSet",
    "parse",
    "parse_expression",
]
