"""Database engine facade: catalog + executor + transaction/connection glue.

One :class:`DatabaseEngine` instance plays the role of one backend RDBMS
(a MySQL/PostgreSQL/Firebird server in the paper).  Client code normally
talks to it through the DB-API driver in :mod:`repro.sql.dbapi`, exactly as
JDBC applications talk to a native driver, but the engine can also be used
directly in tests.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import CatalogError, TransactionError
from repro.sql import ast
from repro.sql.executor import Executor, ResultSet
from repro.sql.parser import parse
from repro.sql.schema import TableSchema
from repro.sql.storage import Table
from repro.sql.transactions import LockManager, Transaction


class Catalog:
    """The set of tables owned by one engine."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._lock = threading.RLock()

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def get_table(self, name: str) -> Table:
        with self._lock:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table {name!r}") from None

    def create_table(self, schema: TableSchema) -> Table:
        with self._lock:
            key = schema.name.lower()
            if key in self._tables:
                raise CatalogError(f"table {schema.name!r} already exists")
            table = Table(schema)
            self._tables[key] = table
            return table

    def restore_table(self, table: Table) -> None:
        """Put a previously dropped table object back (transaction undo)."""
        with self._lock:
            self._tables[table.schema.name.lower()] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._lock:
            key = name.lower()
            if key not in self._tables:
                if if_exists:
                    return
                raise CatalogError(f"unknown table {name!r}")
            del self._tables[key]

    def table_names(self) -> List[str]:
        with self._lock:
            return sorted(table.schema.name for table in self._tables.values())

    def tables(self) -> List[Table]:
        with self._lock:
            return list(self._tables.values())


class Session:
    """One connection's view of the engine: its transaction state."""

    def __init__(self, engine: "DatabaseEngine"):
        self.engine = engine
        self.transaction = Transaction()
        self.autocommit = True
        self.closed = False

    # -- transaction control ---------------------------------------------------

    def begin(self) -> None:
        if not self.transaction.active:
            self.transaction.begin()
        self.autocommit = False

    def commit(self) -> None:
        if self.transaction.active:
            self.transaction.commit()
        self.engine.lock_manager.release(self.transaction.txn_id)
        self.autocommit = True

    def rollback(self) -> None:
        if self.transaction.active:
            self.transaction.rollback()
        self.engine.lock_manager.release(self.transaction.txn_id)
        self.autocommit = True

    # -- execution ---------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> ResultSet:
        if self.closed:
            raise TransactionError("session is closed")
        statement = parse(sql)
        return self.execute_statement(statement, parameters)

    def execute_statement(
        self, statement: ast.Statement, parameters: Sequence[Any] = ()
    ) -> ResultSet:
        if isinstance(statement, ast.BeginTransaction):
            self.begin()
            return ResultSet(update_count=0)
        if isinstance(statement, ast.Commit):
            self.commit()
            return ResultSet(update_count=0)
        if isinstance(statement, ast.Rollback):
            self.rollback()
            return ResultSet(update_count=0)
        implicit = not self.transaction.active
        if implicit:
            self.transaction.begin()
        try:
            result = self.engine.executor.execute(statement, self.transaction, parameters)
        except Exception:
            if implicit:
                self.transaction.rollback()
                self.engine.lock_manager.release(self.transaction.txn_id)
            raise
        if implicit:
            if self.autocommit:
                self.transaction.commit()
                self.engine.lock_manager.release(self.transaction.txn_id)
            # else: keep the transaction open until explicit commit/rollback
        return result

    def close(self) -> None:
        if self.transaction.active:
            self.rollback()
        self.engine.lock_manager.release(self.transaction.txn_id)
        self.closed = True


class DatabaseEngine:
    """An in-memory SQL database engine instance ("one backend")."""

    def __init__(self, name: str = "database", lock_timeout: float = 5.0):
        self.name = name
        self.catalog = Catalog()
        self.lock_manager = LockManager(lock_timeout=lock_timeout)
        self.executor = Executor(self)
        self._statistics_lock = threading.Lock()
        self.statements_executed = 0
        self.reads_executed = 0
        self.writes_executed = 0

    # -- sessions ---------------------------------------------------------------

    def create_session(self) -> Session:
        return Session(self)

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> ResultSet:
        """One-shot autocommit execution, for tests and data loading."""
        session = self.create_session()
        try:
            result = session.execute(sql, parameters)
            self.note_statement(sql)
            return result
        finally:
            session.close()

    def execute_script(self, statements: Iterable[str]) -> None:
        for sql in statements:
            text = sql.strip()
            if text:
                self.execute(text)

    # -- statistics ---------------------------------------------------------------

    def note_statement(self, sql: str) -> None:
        upper = sql.lstrip().upper()
        with self._statistics_lock:
            self.statements_executed += 1
            if upper.startswith("SELECT"):
                self.reads_executed += 1
            else:
                self.writes_executed += 1

    # -- bulk access (used by the Octopus-like ETL tool) ---------------------------

    def dump_table_rows(self, table_name: str) -> List[Dict[str, Any]]:
        table = self.catalog.get_table(table_name)
        return [dict(row) for _row_id, row in table.rows()]

    def table_schema(self, table_name: str) -> TableSchema:
        return self.catalog.get_table(table_name).schema

    def row_count(self, table_name: str) -> int:
        return len(self.catalog.get_table(table_name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseEngine({self.name!r}, tables={self.catalog.table_names()})"
