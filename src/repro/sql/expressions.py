"""Expression evaluation over row contexts.

The evaluator implements SQL three-valued logic: comparisons involving NULL
yield UNKNOWN (represented as ``None``), ``AND``/``OR``/``NOT`` propagate
UNKNOWN, and a WHERE clause only keeps rows whose predicate is strictly
TRUE.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import SQLError, SQLSyntaxError
from repro.sql import ast
from repro.sql.functions import call_scalar, is_aggregate
from repro.sql.types import compare_values


class RowContext:
    """Resolves column references against one (possibly joined) row.

    The row is a mapping from exposed table name (alias or table name) to a
    column->value dict.  Unqualified column names are resolved by searching
    every table; ambiguity raises :class:`SQLError`.
    """

    def __init__(
        self,
        tables: Dict[str, Dict[str, Any]],
        parameters: Sequence[Any] = (),
        outer: Optional["RowContext"] = None,
    ):
        self.tables = tables
        self.parameters = list(parameters)
        self.outer = outer

    def resolve(self, column: ast.ColumnRef) -> Any:
        if column.table is not None:
            for exposed, row in self.tables.items():
                if exposed.lower() == column.table.lower():
                    return _get_case_insensitive(row, column.name)
            if self.outer is not None:
                return self.outer.resolve(column)
            raise SQLError(f"unknown table or alias {column.table!r}")
        matches = []
        for exposed, row in self.tables.items():
            if _has_case_insensitive(row, column.name):
                matches.append(row)
        if len(matches) == 1:
            return _get_case_insensitive(matches[0], column.name)
        if len(matches) > 1:
            raise SQLError(f"ambiguous column reference {column.name!r}")
        if self.outer is not None:
            return self.outer.resolve(column)
        raise SQLError(f"unknown column {column.name!r}")

    def parameter(self, index: int) -> Any:
        try:
            return self.parameters[index]
        except IndexError:
            raise SQLError(
                f"missing parameter #{index + 1}: only {len(self.parameters)} bound"
            ) from None


def _get_case_insensitive(row: Dict[str, Any], name: str) -> Any:
    if name in row:
        return row[name]
    lowered = name.lower()
    for key, value in row.items():
        if key.lower() == lowered:
            return value
    raise SQLError(f"unknown column {name!r}")


def _has_case_insensitive(row: Dict[str, Any], name: str) -> bool:
    if name in row:
        return True
    lowered = name.lower()
    return any(key.lower() == lowered for key in row)


class ExpressionEvaluator:
    """Evaluates AST expressions against a :class:`RowContext`.

    ``subquery_executor`` is an optional callback used for ``IN (SELECT
    ...)``, ``EXISTS`` and scalar subqueries; the executor module injects a
    closure that runs the nested select within the current transaction.
    """

    def __init__(
        self,
        subquery_executor: Optional[Callable[[ast.Select, RowContext], List[List[Any]]]] = None,
    ):
        self._subquery_executor = subquery_executor

    # -- public API -----------------------------------------------------------

    def evaluate(self, expression: ast.Expression, context: RowContext) -> Any:
        method = getattr(self, f"_eval_{type(expression).__name__.lower()}", None)
        if method is None:
            raise SQLError(f"cannot evaluate expression node {type(expression).__name__}")
        return method(expression, context)

    def evaluate_predicate(self, expression: ast.Expression, context: RowContext) -> bool:
        """Evaluate a WHERE/HAVING/ON predicate; UNKNOWN counts as False."""
        return self.evaluate(expression, context) is True

    # -- node handlers ---------------------------------------------------------

    def _eval_literal(self, node: ast.Literal, context: RowContext) -> Any:
        return node.value

    def _eval_parameter(self, node: ast.Parameter, context: RowContext) -> Any:
        return context.parameter(node.index)

    def _eval_columnref(self, node: ast.ColumnRef, context: RowContext) -> Any:
        return context.resolve(node)

    def _eval_star(self, node: ast.Star, context: RowContext) -> Any:
        raise SQLError("'*' is only allowed in a select list or COUNT(*)")

    def _eval_unaryop(self, node: ast.UnaryOp, context: RowContext) -> Any:
        value = self.evaluate(node.operand, context)
        if node.operator == "NOT":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        if node.operator == "-":
            return -value
        if node.operator == "+":
            return +value
        raise SQLError(f"unknown unary operator {node.operator!r}")

    def _eval_binaryop(self, node: ast.BinaryOp, context: RowContext) -> Any:
        operator = node.operator
        if operator == "AND":
            return _three_valued_and(
                _as_bool(self.evaluate(node.left, context)),
                lambda: _as_bool(self.evaluate(node.right, context)),
            )
        if operator == "OR":
            return _three_valued_or(
                _as_bool(self.evaluate(node.left, context)),
                lambda: _as_bool(self.evaluate(node.right, context)),
            )
        left = self.evaluate(node.left, context)
        right = self.evaluate(node.right, context)
        if operator in ("=", "<>", "<", "<=", ">", ">="):
            comparison = compare_values(left, right)
            if comparison is None:
                return None
            return {
                "=": comparison == 0,
                "<>": comparison != 0,
                "<": comparison < 0,
                "<=": comparison <= 0,
                ">": comparison > 0,
                ">=": comparison >= 0,
            }[operator]
        if operator in ("LIKE", "NOT LIKE"):
            if left is None or right is None:
                return None
            matched = _like_match(str(left), str(right))
            return matched if operator == "LIKE" else not matched
        if operator == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if left is None or right is None:
            return None
        try:
            if operator == "+":
                return left + right
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            if operator == "/":
                if right == 0:
                    return None
                result = left / right
                return result
            if operator == "%":
                if right == 0:
                    return None
                return left % right
        except TypeError as exc:
            raise SQLError(
                f"type error applying {operator!r} to {left!r} and {right!r}"
            ) from exc
        raise SQLError(f"unknown binary operator {operator!r}")

    def _eval_isnull(self, node: ast.IsNull, context: RowContext) -> bool:
        value = self.evaluate(node.operand, context)
        is_null = value is None
        return not is_null if node.negated else is_null

    def _eval_inlist(self, node: ast.InList, context: RowContext) -> Optional[bool]:
        value = self.evaluate(node.operand, context)
        if value is None:
            return None
        saw_null = False
        for item in node.items:
            candidate = self.evaluate(item, context)
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not node.negated
        if saw_null:
            return None
        return node.negated

    def _eval_insubquery(self, node: ast.InSubquery, context: RowContext) -> Optional[bool]:
        rows = self._run_subquery(node.subquery, context)
        value = self.evaluate(node.operand, context)
        if value is None:
            return None
        saw_null = False
        for row in rows:
            candidate = row[0] if row else None
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not node.negated
        if saw_null:
            return None
        return node.negated

    def _eval_between(self, node: ast.Between, context: RowContext) -> Optional[bool]:
        value = self.evaluate(node.operand, context)
        low = self.evaluate(node.low, context)
        high = self.evaluate(node.high, context)
        low_cmp = compare_values(value, low)
        high_cmp = compare_values(value, high)
        if low_cmp is None or high_cmp is None:
            return None
        result = low_cmp >= 0 and high_cmp <= 0
        return not result if node.negated else result

    def _eval_functioncall(self, node: ast.FunctionCall, context: RowContext) -> Any:
        if is_aggregate(node.name):
            # Aggregates are computed by the executor; if one leaks down here
            # it means an aggregate was used outside of a select list/HAVING.
            raise SQLError(
                f"aggregate function {node.name!r} not allowed in this context"
            )
        args = [self.evaluate(argument, context) for argument in node.args]
        return call_scalar(node.name, args)

    def _eval_caseexpression(self, node: ast.CaseExpression, context: RowContext) -> Any:
        for condition, value in node.whens:
            if self.evaluate_predicate(condition, context):
                return self.evaluate(value, context)
        if node.default is not None:
            return self.evaluate(node.default, context)
        return None

    def _eval_existssubquery(self, node: ast.ExistsSubquery, context: RowContext) -> bool:
        rows = self._run_subquery(node.subquery, context)
        exists = len(rows) > 0
        return not exists if node.negated else exists

    def _eval_scalarsubquery(self, node: ast.ScalarSubquery, context: RowContext) -> Any:
        rows = self._run_subquery(node.subquery, context)
        if not rows:
            return None
        if len(rows) > 1:
            raise SQLError("scalar subquery returned more than one row")
        return rows[0][0] if rows[0] else None

    def _run_subquery(self, subquery: ast.Select, context: RowContext) -> List[List[Any]]:
        if self._subquery_executor is None:
            raise SQLError("subqueries are not supported in this context")
        return self._subquery_executor(subquery, context)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    return _truthy(value)


def _three_valued_and(left: Optional[bool], right_thunk: Callable[[], Optional[bool]]):
    if left is False:
        return False
    right = right_thunk()
    if left is True:
        return right
    # left is UNKNOWN
    if right is False:
        return False
    return None


def _three_valued_or(left: Optional[bool], right_thunk: Callable[[], Optional[bool]]):
    if left is True:
        return True
    right = right_thunk()
    if left is False:
        return right
    if right is True:
        return True
    return None


_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards, case-insensitive like MySQL."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex_parts = ["^"]
        for char in pattern:
            if char == "%":
                regex_parts.append(".*")
            elif char == "_":
                regex_parts.append(".")
            else:
                regex_parts.append(re.escape(char))
        regex_parts.append("$")
        compiled = re.compile("".join(regex_parts), re.IGNORECASE | re.DOTALL)
        if len(_LIKE_CACHE) < 4096:
            _LIKE_CACHE[pattern] = compiled
    return compiled.match(value) is not None
