"""Schema objects: columns, indexes and table definitions.

These are the catalog objects of the in-memory engine.  They are also what
the middleware's ``DatabaseMetaData`` equivalent exposes so that the C-JDBC
partial-replication load balancer can discover which tables live on which
backend (paper §2.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import CatalogError
from repro.sql.types import SQLType, coerce_value, type_from_name


@dataclass
class Column:
    """A table column."""

    name: str
    sql_type: SQLType
    length: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    auto_increment: bool = False
    default: Any = None

    @classmethod
    def from_definition(
        cls,
        name: str,
        type_name: str,
        length: Optional[int] = None,
        **flags: Any,
    ) -> "Column":
        return cls(name=name, sql_type=type_from_name(type_name), length=length, **flags)

    def coerce(self, value: Any) -> Any:
        return coerce_value(value, self.sql_type)

    def describe(self) -> Dict[str, Any]:
        """Column description in DatabaseMetaData.getColumns() spirit."""
        return {
            "COLUMN_NAME": self.name,
            "TYPE_NAME": self.sql_type.value,
            "COLUMN_SIZE": self.length,
            "NULLABLE": not self.not_null,
            "IS_AUTOINCREMENT": self.auto_increment,
            "COLUMN_DEF": self.default,
        }


@dataclass
class Index:
    """A (hash) index over one or more columns."""

    name: str
    table: str
    columns: List[str]
    unique: bool = False

    def key_for(self, row: Dict[str, Any]):
        return tuple(row.get(column) for column in self.columns)


class TableSchema:
    """Definition of a table: ordered columns, primary key and indexes."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
        temporary: bool = False,
    ):
        self.name = name
        self.columns: List[Column] = list(columns)
        self.temporary = temporary
        self._columns_by_name = {c.name.lower(): c for c in self.columns}
        if len(self._columns_by_name) != len(self.columns):
            raise CatalogError(f"duplicate column name in table {name!r}")
        declared_pk = [c.name for c in self.columns if c.primary_key]
        self.primary_key: List[str] = list(primary_key or declared_pk)
        for key_column in self.primary_key:
            column = self.column(key_column)
            column.primary_key = True
            column.not_null = True
        self.indexes: Dict[str, Index] = {}
        self.unique_constraints: List[List[str]] = []
        if self.primary_key:
            self.unique_constraints.append(list(self.primary_key))
        for column in self.columns:
            if column.unique and [column.name] not in self.unique_constraints:
                self.unique_constraints.append([column.name])

    # -- lookups -------------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._columns_by_name[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown column {name!r} in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._columns_by_name

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    # -- mutation ------------------------------------------------------------

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise CatalogError(
                f"column {column.name!r} already exists in table {self.name!r}"
            )
        self.columns.append(column)
        self._columns_by_name[column.name.lower()] = column

    def add_index(self, index: Index) -> None:
        if index.name.lower() in {name.lower() for name in self.indexes}:
            raise CatalogError(f"index {index.name!r} already exists")
        for column in index.columns:
            self.column(column)
        self.indexes[index.name] = index
        if index.unique and index.columns not in self.unique_constraints:
            self.unique_constraints.append(list(index.columns))

    def drop_index(self, name: str) -> None:
        for existing in list(self.indexes):
            if existing.lower() == name.lower():
                del self.indexes[existing]
                return
        raise CatalogError(f"unknown index {name!r} on table {self.name!r}")

    # -- serialization (used by the Octopus-like ETL tool) --------------------

    def to_portable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": c.sql_type.value,
                    "length": c.length,
                    "not_null": c.not_null,
                    "primary_key": c.primary_key,
                    "unique": c.unique,
                    "auto_increment": c.auto_increment,
                    "default": c.default,
                }
                for c in self.columns
            ],
            "primary_key": list(self.primary_key),
            "indexes": [
                {
                    "name": index.name,
                    "columns": list(index.columns),
                    "unique": index.unique,
                }
                for index in self.indexes.values()
            ],
        }

    @classmethod
    def from_portable(cls, data: Dict[str, Any]) -> "TableSchema":
        columns = [
            Column(
                name=c["name"],
                sql_type=SQLType(c["type"]),
                length=c.get("length"),
                not_null=c.get("not_null", False),
                primary_key=c.get("primary_key", False),
                unique=c.get("unique", False),
                auto_increment=c.get("auto_increment", False),
                default=c.get("default"),
            )
            for c in data["columns"]
        ]
        schema = cls(data["name"], columns, data.get("primary_key") or None)
        for index_data in data.get("indexes", []):
            schema.add_index(
                Index(
                    name=index_data["name"],
                    table=data["name"],
                    columns=list(index_data["columns"]),
                    unique=index_data.get("unique", False),
                )
            )
        return schema

    def describe(self) -> Dict[str, Any]:
        """Table description in DatabaseMetaData.getTables() spirit."""
        return {
            "TABLE_NAME": self.name,
            "TABLE_TYPE": "TEMPORARY" if self.temporary else "TABLE",
            "COLUMNS": [column.describe() for column in self.columns],
            "PRIMARY_KEY": list(self.primary_key),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"
