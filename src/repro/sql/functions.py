"""Built-in SQL scalar functions and aggregate implementations.

``NOW()`` and ``RAND()`` are the macros the C-JDBC scheduler rewrites before
broadcasting writes (paper §2.4.1): they are non-deterministic, so if each
backend evaluated them locally the replicas would diverge.  They are still
implemented here so a *single* backend behaves like a normal RDBMS.
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SQLError
from repro.sql.types import sort_key


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_now(args: List[Any]) -> _dt.datetime:
    return _dt.datetime.now()


def _fn_current_date(args: List[Any]) -> _dt.date:
    return _dt.date.today()


def _fn_rand(args: List[Any]) -> float:
    return random.random()


def _fn_length(args: List[Any]) -> Optional[int]:
    value = args[0]
    return None if value is None else len(str(value))


def _fn_upper(args: List[Any]) -> Optional[str]:
    value = args[0]
    return None if value is None else str(value).upper()


def _fn_lower(args: List[Any]) -> Optional[str]:
    value = args[0]
    return None if value is None else str(value).lower()


def _fn_substring(args: List[Any]) -> Optional[str]:
    value = args[0]
    if value is None:
        return None
    text = str(value)
    start = int(args[1]) - 1 if len(args) > 1 else 0
    if len(args) > 2:
        return text[start : start + int(args[2])]
    return text[start:]


def _fn_concat(args: List[Any]) -> Optional[str]:
    if any(value is None for value in args):
        return None
    return "".join(str(value) for value in args)


def _fn_abs(args: List[Any]) -> Optional[float]:
    value = args[0]
    return None if value is None else abs(value)


def _fn_round(args: List[Any]) -> Optional[float]:
    value = args[0]
    if value is None:
        return None
    digits = int(args[1]) if len(args) > 1 else 0
    return round(value, digits)


def _fn_floor(args: List[Any]) -> Optional[int]:
    value = args[0]
    return None if value is None else math.floor(value)


def _fn_ceiling(args: List[Any]) -> Optional[int]:
    value = args[0]
    return None if value is None else math.ceil(value)


def _fn_mod(args: List[Any]) -> Optional[float]:
    if args[0] is None or args[1] is None:
        return None
    return args[0] % args[1]


def _fn_coalesce(args: List[Any]) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(args: List[Any]) -> Any:
    if len(args) != 2:
        raise SQLError("NULLIF takes exactly 2 arguments")
    return None if args[0] == args[1] else args[0]


def _fn_ifnull(args: List[Any]) -> Any:
    return args[1] if args[0] is None else args[0]


SCALAR_FUNCTIONS: Dict[str, Callable[[List[Any]], Any]] = {
    "NOW": _fn_now,
    "CURRENT_TIMESTAMP": _fn_now,
    "SYSDATE": _fn_now,
    "CURRENT_DATE": _fn_current_date,
    "CURDATE": _fn_current_date,
    "RAND": _fn_rand,
    "RANDOM": _fn_rand,
    "LENGTH": _fn_length,
    "CHAR_LENGTH": _fn_length,
    "UPPER": _fn_upper,
    "UCASE": _fn_upper,
    "LOWER": _fn_lower,
    "LCASE": _fn_lower,
    "SUBSTRING": _fn_substring,
    "SUBSTR": _fn_substring,
    "CONCAT": _fn_concat,
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "FLOOR": _fn_floor,
    "CEILING": _fn_ceiling,
    "CEIL": _fn_ceiling,
    "MOD": _fn_mod,
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "IFNULL": _fn_ifnull,
}

#: Functions whose result is non-deterministic.  The middleware request
#: parser uses this set to decide which calls must be rewritten into
#: literal values before a write is broadcast to the backends.
NON_DETERMINISTIC_FUNCTIONS = frozenset(
    {"NOW", "CURRENT_TIMESTAMP", "SYSDATE", "CURRENT_DATE", "CURDATE", "RAND", "RANDOM"}
)


def call_scalar(name: str, args: List[Any]) -> Any:
    """Invoke the scalar function ``name`` (case-insensitive)."""
    try:
        function = SCALAR_FUNCTIONS[name.upper()]
    except KeyError:
        raise SQLError(f"unknown SQL function {name!r}") from None
    return function(args)


def is_scalar_function(name: str) -> bool:
    return name.upper() in SCALAR_FUNCTIONS


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """Incremental aggregate computation over a group of rows."""

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAggregate(Aggregate):
    def __init__(self, count_nulls: bool, distinct: bool = False):
        self._count = 0
        self._count_nulls = count_nulls
        self._distinct = distinct
        self._seen = set()

    def add(self, value: Any) -> None:
        if value is None and not self._count_nulls:
            return
        if self._distinct:
            key = sort_key(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._count += 1

    def result(self) -> int:
        return self._count


class SumAggregate(Aggregate):
    def __init__(self, distinct: bool = False):
        self._sum = None
        self._distinct = distinct
        self._seen = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            key = sort_key(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._sum = value if self._sum is None else self._sum + value

    def result(self) -> Any:
        return self._sum


class AvgAggregate(Aggregate):
    def __init__(self, distinct: bool = False):
        self._sum = 0.0
        self._count = 0
        self._distinct = distinct
        self._seen = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            key = sort_key(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._sum += value
        self._count += 1

    def result(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum / self._count


class MinAggregate(Aggregate):
    def __init__(self):
        self._min = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._min is None or sort_key(value) < sort_key(self._min):
            self._min = value

    def result(self) -> Any:
        return self._min


class MaxAggregate(Aggregate):
    def __init__(self):
        self._max = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._max is None or sort_key(value) > sort_key(self._max):
            self._max = value

    def result(self) -> Any:
        return self._max


AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_NAMES


def make_aggregate(name: str, count_star: bool = False, distinct: bool = False) -> Aggregate:
    """Create an aggregate accumulator for function ``name``."""
    upper = name.upper()
    if upper == "COUNT":
        return CountAggregate(count_nulls=count_star, distinct=distinct)
    if upper == "SUM":
        return SumAggregate(distinct)
    if upper == "AVG":
        return AvgAggregate(distinct)
    if upper == "MIN":
        return MinAggregate()
    if upper == "MAX":
        return MaxAggregate()
    raise SQLError(f"unknown aggregate function {name!r}")
