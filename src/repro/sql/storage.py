"""Row storage and index maintenance for the in-memory engine.

A :class:`Table` owns the row dictionaries and keeps hash indexes
(including the automatically-created primary-key index) in sync on every
mutation.  Mutations return undo records so :mod:`repro.sql.transactions`
can roll back aborted transactions.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import CatalogError, ConstraintViolation
from repro.sql.schema import Column, Index, TableSchema

RowId = int
Row = Dict[str, Any]


class HashIndex:
    """A (possibly unique) hash index mapping key tuples to row ids."""

    def __init__(self, definition: Index):
        self.definition = definition
        self._entries: Dict[Tuple[Any, ...], set] = {}

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def columns(self) -> List[str]:
        return self.definition.columns

    @property
    def unique(self) -> bool:
        return self.definition.unique

    def key_for(self, row: Row) -> Tuple[Any, ...]:
        return tuple(_hashable(row.get(column)) for column in self.columns)

    def insert(self, row_id: RowId, row: Row) -> None:
        key = self.key_for(row)
        bucket = self._entries.setdefault(key, set())
        if self.unique and bucket and None not in key:
            raise ConstraintViolation(
                f"unique index {self.name!r} violated for key {key!r}"
            )
        bucket.add(row_id)

    def remove(self, row_id: RowId, row: Row) -> None:
        key = self.key_for(row)
        bucket = self._entries.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._entries[key]

    def lookup(self, key: Tuple[Any, ...]) -> Iterable[RowId]:
        return self._entries.get(tuple(_hashable(k) for k in key), set())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set, bytearray)):
        return repr(value)
    return value


class Table:
    """Physical storage for one table: rows keyed by an internal row id."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[RowId, Row] = {}
        self._row_id_counter = itertools.count(1)
        self._auto_increment_counters: Dict[str, int] = {}
        self.indexes: Dict[str, HashIndex] = {}
        if schema.primary_key:
            self._ensure_index(
                Index(
                    name=f"pk_{schema.name}",
                    table=schema.name,
                    columns=list(schema.primary_key),
                    unique=True,
                )
            )
        for index in schema.indexes.values():
            self._ensure_index(index)
        # Enforce column-level UNIQUE constraints that have no explicit index yet.
        for unique_columns in schema.unique_constraints:
            if unique_columns == list(schema.primary_key):
                continue
            self._ensure_index(
                Index(
                    name=f"uq_{schema.name}_{'_'.join(unique_columns)}",
                    table=schema.name,
                    columns=list(unique_columns),
                    unique=True,
                )
            )

    # -- schema maintenance ---------------------------------------------------

    def _ensure_index(self, definition: Index) -> HashIndex:
        existing = self.indexes.get(definition.name)
        if existing is not None:
            return existing
        index = HashIndex(definition)
        for row_id, row in self._rows.items():
            index.insert(row_id, row)
        self.indexes[definition.name] = index
        return index

    def create_index(self, definition: Index) -> HashIndex:
        if definition.name in self.indexes:
            raise CatalogError(f"index {definition.name!r} already exists")
        self.schema.add_index(definition)
        return self._ensure_index(definition)

    def drop_index(self, name: str) -> None:
        self.schema.drop_index(name)
        for existing in list(self.indexes):
            if existing.lower() == name.lower():
                del self.indexes[existing]
                return

    def add_column(self, column: Column) -> None:
        self.schema.add_column(column)
        default = column.default
        for row in self._rows.values():
            row[column.name] = default

    # -- row access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Tuple[RowId, Row]]:
        """Iterate over (row_id, row) pairs; snapshot to tolerate mutation."""
        return iter(list(self._rows.items()))

    def get_row(self, row_id: RowId) -> Optional[Row]:
        return self._rows.get(row_id)

    def find_by_index(self, columns: List[str], values: Tuple[Any, ...]) -> Optional[HashIndex]:
        """Return an index that exactly covers ``columns`` if one exists."""
        wanted = [c.lower() for c in columns]
        for index in self.indexes.values():
            if [c.lower() for c in index.columns] == wanted:
                return index
        return None

    # -- mutations -----------------------------------------------------------

    def insert_row(self, values: Row) -> Tuple[RowId, Row]:
        """Insert a row (already coerced by the executor) and index it.

        Returns ``(row_id, stored_row)``; raises :class:`ConstraintViolation`
        on NOT NULL / unique violations without leaving partial index state.
        """
        row = self._complete_row(values)
        self._check_not_null(row)
        row_id = next(self._row_id_counter)
        inserted_into: List[HashIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(row_id, row)
                inserted_into.append(index)
        except ConstraintViolation:
            for index in inserted_into:
                index.remove(row_id, row)
            raise
        self._rows[row_id] = row
        return row_id, row

    def update_row(self, row_id: RowId, changes: Row) -> Tuple[Row, Row]:
        """Apply ``changes`` to one row; returns ``(old_row, new_row)``."""
        old_row = self._rows[row_id]
        new_row = dict(old_row)
        new_row.update(changes)
        self._check_not_null(new_row)
        for index in self.indexes.values():
            index.remove(row_id, old_row)
        try:
            for index in self.indexes.values():
                index.insert(row_id, new_row)
        except ConstraintViolation:
            # restore previous index state before propagating
            for index in self.indexes.values():
                index.remove(row_id, new_row)
                index.insert(row_id, old_row)
            raise
        self._rows[row_id] = new_row
        return dict(old_row), new_row

    def delete_row(self, row_id: RowId) -> Row:
        row = self._rows.pop(row_id)
        for index in self.indexes.values():
            index.remove(row_id, row)
        return row

    def restore_row(self, row_id: RowId, row: Row) -> None:
        """Undo helper: put a deleted row back with its original row id."""
        self._rows[row_id] = dict(row)
        for index in self.indexes.values():
            index.insert(row_id, self._rows[row_id])

    def truncate(self) -> None:
        self._rows.clear()
        for index in self.indexes.values():
            index._entries.clear()

    # -- helpers ---------------------------------------------------------------

    def _complete_row(self, values: Row) -> Row:
        """Fill missing columns with defaults / auto-increment values."""
        row: Row = {}
        for column in self.schema.columns:
            if column.name in values:
                row[column.name] = values[column.name]
            elif column.auto_increment:
                row[column.name] = self._next_auto_increment(column.name)
            elif column.default is not None:
                row[column.name] = column.coerce(column.default)
            else:
                row[column.name] = None
        unknown = set(values) - {c.name for c in self.schema.columns}
        if unknown:
            raise CatalogError(
                f"unknown column(s) {sorted(unknown)!r} for table {self.schema.name!r}"
            )
        return row

    def _next_auto_increment(self, column_name: str) -> int:
        current = self._auto_increment_counters.get(column_name)
        if current is None:
            current = 0
            for row in self._rows.values():
                value = row.get(column_name)
                if isinstance(value, int) and value > current:
                    current = value
        current += 1
        self._auto_increment_counters[column_name] = current
        return current

    def note_explicit_key(self, column_name: str, value: Any) -> None:
        """Keep the auto-increment counter ahead of explicitly inserted keys."""
        if isinstance(value, int):
            current = self._auto_increment_counters.get(column_name, 0)
            if value > current:
                self._auto_increment_counters[column_name] = value

    def _check_not_null(self, row: Row) -> None:
        for column in self.schema.columns:
            if column.not_null and row.get(column.name) is None and not column.auto_increment:
                raise ConstraintViolation(
                    f"column {column.name!r} of table {self.schema.name!r} may not be NULL"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name!r}, {len(self)} rows)"
