"""In-process group transport: membership, total order, failure injection.

The transport is the shared medium all channels of one "network" attach to.
Total order is obtained with a per-group sequencer (a lock around sequence
assignment + synchronous delivery in sequence order), the approach JGroups'
SEQUENCER protocol uses.  Delivery is synchronous and reliable: a multicast
returns once every live member has processed the message, which mirrors the
blocking group RPC the C-JDBC distributed request manager performs before
acknowledging a write.

Failure injection: a member can be killed (``fail_member``), which removes
it from every group and triggers view changes, or the transport can drop
messages to specific members (``partition``) to simulate network failures in
tests.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import GroupCommunicationError
from repro.groupcomm.message import GroupMessage, ViewChange


class GroupTransport:
    """Shared medium connecting group channels."""

    def __init__(self, name: str = "transport"):
        self.name = name
        self._lock = threading.RLock()
        #: group name -> member name -> delivery callback
        self._groups: Dict[str, Dict[str, Callable[[GroupMessage], None]]] = {}
        #: group name -> member name -> view-change callback
        self._view_listeners: Dict[str, Dict[str, Callable[[ViewChange], None]]] = {}
        #: per-group sequence counters (the sequencer)
        self._sequences: Dict[str, int] = {}
        self._view_ids: Dict[str, int] = {}
        #: members considered dead (failure injection)
        self._failed_members: Set[str] = set()
        #: (sender, receiver) pairs whose messages are dropped
        self._partitions: Set[tuple] = set()
        self.messages_sent = 0
        self.messages_delivered = 0

    # -- membership ----------------------------------------------------------------

    def join(
        self,
        group: str,
        member: str,
        on_message: Callable[[GroupMessage], None],
        on_view_change: Optional[Callable[[ViewChange], None]] = None,
    ) -> List[str]:
        """Add ``member`` to ``group``; returns the new membership view."""
        with self._lock:
            if member in self._failed_members:
                self._failed_members.discard(member)
            members = self._groups.setdefault(group, {})
            if member in members:
                raise GroupCommunicationError(
                    f"member {member!r} already joined group {group!r}"
                )
            members[member] = on_message
            if on_view_change is not None:
                self._view_listeners.setdefault(group, {})[member] = on_view_change
            view = sorted(members)
            self._notify_view_change(group, joined=[member], left=[])
            return view

    def leave(self, group: str, member: str) -> None:
        with self._lock:
            members = self._groups.get(group, {})
            if member in members:
                del members[member]
                self._view_listeners.get(group, {}).pop(member, None)
                self._notify_view_change(group, joined=[], left=[member])

    def members(self, group: str) -> List[str]:
        with self._lock:
            return sorted(self._groups.get(group, {}))

    # -- failure injection --------------------------------------------------------------

    def fail_member(self, member: str) -> None:
        """Simulate the crash of ``member``: drop it from every group."""
        with self._lock:
            self._failed_members.add(member)
            for group, members in self._groups.items():
                if member in members:
                    del members[member]
                    self._view_listeners.get(group, {}).pop(member, None)
                    self._notify_view_change(group, joined=[], left=[member])

    def heal_member(self, member: str) -> None:
        with self._lock:
            self._failed_members.discard(member)

    def partition(self, sender: str, receiver: str) -> None:
        """Drop messages from ``sender`` to ``receiver`` (one direction)."""
        with self._lock:
            self._partitions.add((sender, receiver))

    def heal_partition(self, sender: str, receiver: str) -> None:
        with self._lock:
            self._partitions.discard((sender, receiver))

    # -- messaging ---------------------------------------------------------------------

    def multicast(self, group: str, sender: str, payload: Any) -> GroupMessage:
        """Send a totally ordered message to every member of ``group``.

        Delivery is synchronous: the call returns after every live member's
        callback has run.  The sender receives its own message too (JGroups
        default), which the distributed request manager relies on to apply
        writes locally in the same total order as everywhere else.
        """
        with self._lock:
            members = self._groups.get(group)
            if not members or sender not in members:
                raise GroupCommunicationError(
                    f"sender {sender!r} is not a member of group {group!r}"
                )
            sequence = self._sequences.get(group, 0) + 1
            self._sequences[group] = sequence
            message = GroupMessage(group=group, sender=sender, payload=payload, sequence=sequence)
            self.messages_sent += 1
            # Snapshot the delivery targets while holding the sequencer lock so
            # concurrent multicasts deliver in sequence order at every member.
            targets = [
                (name, callback)
                for name, callback in sorted(members.items())
                if (sender, name) not in self._partitions
            ]
            errors = []
            for name, callback in targets:
                try:
                    callback(message)
                    self.messages_delivered += 1
                except Exception as exc:  # noqa: BLE001 - collect member failures
                    errors.append((name, exc))
            if errors:
                raise GroupCommunicationError(
                    f"delivery failed at members {[name for name, _ in errors]}: {errors[0][1]}"
                )
            return message

    def send_to(self, group: str, sender: str, receiver: str, payload: Any) -> Any:
        """Point-to-point message within a group (used for state transfer)."""
        with self._lock:
            members = self._groups.get(group, {})
            callback = members.get(receiver)
            if callback is None:
                raise GroupCommunicationError(
                    f"member {receiver!r} is not in group {group!r}"
                )
            if (sender, receiver) in self._partitions:
                raise GroupCommunicationError(
                    f"network partition between {sender!r} and {receiver!r}"
                )
            message = GroupMessage(group=group, sender=sender, payload=payload, sequence=None)
            self.messages_sent += 1
        callback(message)
        self.messages_delivered += 1
        return message

    # -- monitoring -------------------------------------------------------------------------

    def describe(self) -> dict:
        """Transport status for the console's ``group`` command."""
        with self._lock:
            groups = {
                group: {
                    "members": sorted(members),
                    "view_id": self._view_ids.get(group, 0),
                    "sequence": self._sequences.get(group, 0),
                    # the in-process medium itself is the (only) sequencer
                    "sequencer": self.name,
                    "is_sequencer": True,
                }
                for group, members in self._groups.items()
            }
            return {
                "transport": "inproc",
                "groups": groups,
                "messages_sent": self.messages_sent,
                "messages_delivered": self.messages_delivered,
            }

    # -- internals --------------------------------------------------------------------------

    def _notify_view_change(self, group: str, joined: List[str], left: List[str]) -> None:
        view_id = self._view_ids.get(group, 0) + 1
        self._view_ids[group] = view_id
        view = ViewChange(
            group=group,
            members=sorted(self._groups.get(group, {})),
            joined=joined,
            left=left,
            view_id=view_id,
        )
        for listener in list(self._view_listeners.get(group, {}).values()):
            try:
                listener(view)
            except Exception:  # noqa: BLE001 - view listeners must not break membership
                pass
