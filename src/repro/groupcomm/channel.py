"""Group channel: the JChannel-like handle used by distributed components."""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from repro.errors import GroupCommunicationError
from repro.groupcomm.message import GroupMessage, ViewChange
from repro.groupcomm.transport import GroupTransport


class GroupChannel:
    """One member's handle on a group.

    Usage mirrors JGroups: create the channel over a transport, register a
    message handler, ``connect(group)``, then ``multicast(payload)``.  The
    handler runs synchronously in total order with respect to every other
    member's handler.
    """

    def __init__(self, transport: GroupTransport, member_name: str):
        self.transport = transport
        self.member_name = member_name
        self.group: Optional[str] = None
        self._handler: Optional[Callable[[GroupMessage], None]] = None
        self._view_handler: Optional[Callable[[ViewChange], None]] = None
        self._delivered: List[GroupMessage] = []
        self._lock = threading.Lock()

    # -- configuration --------------------------------------------------------------

    def set_message_handler(self, handler: Callable[[GroupMessage], None]) -> None:
        self._handler = handler

    def set_view_handler(self, handler: Callable[[ViewChange], None]) -> None:
        self._view_handler = handler

    # -- membership ------------------------------------------------------------------

    def connect(self, group: str) -> List[str]:
        if self.group is not None:
            raise GroupCommunicationError(
                f"channel {self.member_name!r} already connected to {self.group!r}"
            )
        view = self.transport.join(group, self.member_name, self._deliver, self._view_changed)
        self.group = group
        return view

    def disconnect(self) -> None:
        if self.group is not None:
            self.transport.leave(self.group, self.member_name)
            self.group = None

    @property
    def connected(self) -> bool:
        return self.group is not None

    def members(self) -> List[str]:
        if self.group is None:
            return []
        return self.transport.members(self.group)

    # -- messaging --------------------------------------------------------------------

    def multicast(self, payload: Any) -> GroupMessage:
        if self.group is None:
            raise GroupCommunicationError("channel is not connected to a group")
        return self.transport.multicast(self.group, self.member_name, payload)

    def send_to(self, receiver: str, payload: Any) -> Any:
        if self.group is None:
            raise GroupCommunicationError("channel is not connected to a group")
        return self.transport.send_to(self.group, self.member_name, receiver, payload)

    # -- delivery ----------------------------------------------------------------------

    def _deliver(self, message: GroupMessage) -> None:
        with self._lock:
            self._delivered.append(message)
        if self._handler is not None:
            self._handler(message)

    def _view_changed(self, view: ViewChange) -> None:
        if self._view_handler is not None:
            self._view_handler(view)

    def delivered_messages(self) -> List[GroupMessage]:
        with self._lock:
            return list(self._delivered)
