"""Messages exchanged over the group communication layer."""

from __future__ import annotations

import dataclasses
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import GroupCommunicationError

_sequence = itertools.count(1)
_sequence_lock = threading.Lock()


def _next_message_id() -> int:
    with _sequence_lock:
        return next(_sequence)


@dataclass
class GroupMessage:
    """A totally ordered multicast message.

    ``sequence`` is assigned by the transport's sequencer: every member
    delivers messages in increasing sequence order, which is the total order
    the distributed request managers rely on.
    """

    group: str
    sender: str
    payload: Any
    message_id: int = field(default_factory=_next_message_id)
    sequence: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.payload).__name__
        return f"GroupMessage(seq={self.sequence}, from={self.sender}, {kind})"


@dataclass
class ViewChange:
    """Membership change notification delivered to surviving members."""

    group: str
    members: List[str]
    joined: List[str] = field(default_factory=list)
    left: List[str] = field(default_factory=list)
    view_id: int = 0


# ---------------------------------------------------------------------------
# payload wire codec
# ---------------------------------------------------------------------------
#
# The in-process transport hands payload objects around by reference; the
# socket transport must serialize them.  Registered payload dataclasses
# round-trip as ``{"@payload": <class name>, "fields": {...}}`` documents; a
# class needing to restore non-JSON field types (tuples, nested tuples)
# defines a ``from_wire(fields)`` classmethod.  Plain JSON-safe values pass
# through untouched, so tests can multicast bare strings over either
# transport.

_WIRE_TAG = "@payload"

#: class name -> registered payload dataclass
_PAYLOAD_TYPES: Dict[str, type] = {}


def register_payload(cls: type) -> type:
    """Class decorator registering a payload dataclass for wire transport."""
    _PAYLOAD_TYPES[cls.__name__] = cls
    return cls


def payload_to_wire(payload: Any) -> Any:
    """Wire-safe document for ``payload`` (passthrough for plain values)."""
    cls = type(payload)
    if _PAYLOAD_TYPES.get(cls.__name__) is cls:
        return {_WIRE_TAG: cls.__name__, "fields": dataclasses.asdict(payload)}
    return payload


def payload_from_wire(document: Any) -> Any:
    """Invert :func:`payload_to_wire`."""
    if isinstance(document, Mapping) and _WIRE_TAG in document:
        cls = _PAYLOAD_TYPES.get(str(document[_WIRE_TAG]))
        if cls is None:
            raise GroupCommunicationError(
                f"unknown group payload type {document[_WIRE_TAG]!r}"
            )
        fields = dict(document.get("fields") or {})
        from_wire = getattr(cls, "from_wire", None)
        if from_wire is not None:
            return from_wire(fields)
        return cls(**fields)
    return document
