"""Messages exchanged over the group communication layer."""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, List, Optional

_sequence = itertools.count(1)
_sequence_lock = threading.Lock()


def _next_message_id() -> int:
    with _sequence_lock:
        return next(_sequence)


@dataclass
class GroupMessage:
    """A totally ordered multicast message.

    ``sequence`` is assigned by the transport's sequencer: every member
    delivers messages in increasing sequence order, which is the total order
    the distributed request managers rely on.
    """

    group: str
    sender: str
    payload: Any
    message_id: int = field(default_factory=_next_message_id)
    sequence: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.payload).__name__
        return f"GroupMessage(seq={self.sequence}, from={self.sender}, {kind})"


@dataclass
class ViewChange:
    """Membership change notification delivered to surviving members."""

    group: str
    members: List[str]
    joined: List[str] = field(default_factory=list)
    left: List[str] = field(default_factory=list)
    view_id: int = 0
