"""Socket group transport: total order and membership over real TCP.

One :class:`SocketGroupTransport` is one *node* of a group network —
typically one per controller process — speaking the PR 6 framed wire
protocol (:mod:`repro.net.protocol`) to its peers.  It implements the same
method surface as the in-process :class:`repro.groupcomm.transport.
GroupTransport`, so :class:`~repro.groupcomm.channel.GroupChannel` and the
distributed request manager run over either medium unchanged.

Design (JGroups SEQUENCER over TCP):

* **Sequencer-based total order.**  The sequencer is *derived*, not
  elected: it is the member with the lowest ``(host, port)`` address in the
  current view.  A sender submits a multicast to the sequencer
  (``GROUP_MCAST``); the sequencer assigns the next sequence number under a
  per-group lock and synchronously fans ``GROUP_DELIVER`` frames out to
  every member address (including itself and the origin), so a multicast
  returns only after every live member processed it — the blocking group
  RPC semantics the distributed request manager acknowledges writes on.
* **Membership.**  A joiner asks any known peer (``GROUP_JOIN``);
  non-sequencers answer with a redirect, the sequencer installs the new
  view and pushes it (``GROUP_VIEW``) to every member — including the
  joiner — before replying.  When no peer is reachable the joiner becomes a
  singleton group (and, as lowest address, its sequencer).
* **Failure detection.**  Heartbeat frames flow both ways: members beacon
  the sequencer and the sequencer beacons the members.  A node that has not
  heard from a peer for ``heartbeat_interval * heartbeat_threshold``
  seconds suspects it: the sequencer removes silent members directly; a
  member that loses the sequencer reports the suspicion to the next-lowest
  survivor (``GROUP_SUSPECT``) — or removes it itself if *it* is the new
  sequencer — and the surviving view is re-broadcast.  The sequence counter
  travels inside every view so a re-elected sequencer continues numbering
  where its predecessor stopped.
* **Partitions** are injected receiver-side: a ``(sender, receiver)`` pair
  registered via :meth:`partition` silently drops multicast deliveries to
  that member and fails point-to-point sends, matching the in-process
  transport's semantics.

Retry semantics: if the sequencer dies mid-multicast the sender runs
failure handling and retries against the re-elected sequencer.  A multicast
the dead sequencer had already fanned out but not acknowledged is delivered
*again* with a fresh sequence number — at-least-once across sequencer
crashes — which the distributed layer tolerates (idempotent replay, origin
results keyed by message id).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import GroupCommunicationError
from repro.groupcomm.message import (
    GroupMessage,
    ViewChange,
    _next_message_id,
    payload_from_wire,
    payload_to_wire,
)
from repro.net.protocol import (
    ConnectionClosed,
    FrameSocket,
    MessageType,
    ProtocolError,
    decode_error,
    encode_error,
)

#: default seconds between heartbeat beacons
DEFAULT_HEARTBEAT_INTERVAL = 0.5
#: missed intervals before a silent peer is suspected dead
DEFAULT_HEARTBEAT_THRESHOLD = 3
#: default cap on one group RPC round trip
DEFAULT_RPC_TIMEOUT = 10.0

#: socket poll granularity for inbound service loops and RPC waits
_POLL_INTERVAL = 0.1


def _address_key(address: str) -> Tuple[str, int]:
    """Sort key for ``host:port`` addresses (sequencer = lowest)."""
    host, _, port = address.rpartition(":")
    return (host, int(port))


class _RpcTransportError(GroupCommunicationError):
    """Internal: the RPC *transport* failed (dial, timeout, dead socket).

    Distinguished from handler-raised :class:`GroupCommunicationError`
    (duplicate member, unknown receiver, ...) so failure handling only
    triggers on genuinely unreachable peers.
    """


class _PeerConnection:
    """One cached outbound request/response connection to a peer node."""

    __slots__ = ("frames", "lock")

    def __init__(self, frames: FrameSocket):
        self.frames = frames
        self.lock = threading.Lock()


class _GroupState:
    """This node's view of one group."""

    __slots__ = ("name", "view_id", "sequence", "members")

    def __init__(self, name: str):
        self.name = name
        self.view_id = 0
        #: last sequence number assigned (sequencer) or seen (member)
        self.sequence = 0
        #: member name -> node address hosting it
        self.members: Dict[str, str] = {}


class SocketGroupTransport:
    """One node of a TCP group network; GroupTransport-compatible."""

    def __init__(
        self,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        peers: Sequence[str] = (),
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_threshold: int = DEFAULT_HEARTBEAT_THRESHOLD,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        name: Optional[str] = None,
    ):
        if heartbeat_interval <= 0:
            raise GroupCommunicationError(
                f"heartbeat_interval must be positive, got {heartbeat_interval!r}"
            )
        if heartbeat_threshold < 1:
            raise GroupCommunicationError(
                f"heartbeat_threshold must be >= 1, got {heartbeat_threshold!r}"
            )
        self.bind_host = bind_host
        self.bind_port = bind_port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_threshold = heartbeat_threshold
        self.rpc_timeout = rpc_timeout
        self._peers: List[str] = list(peers)
        self._lock = threading.RLock()
        #: group -> member name -> (on_message, on_view_change) for members
        #: hosted by THIS node
        self._local: Dict[str, Dict[str, tuple]] = {}
        self._groups: Dict[str, _GroupState] = {}
        #: per-group sequencing/membership lock (reentrant: fan-out may
        #: remove a dead member mid-multicast)
        self._order_locks: Dict[str, threading.RLock] = {}
        #: (sender, receiver) member pairs whose messages are dropped
        self._partitions: Set[tuple] = set()
        self._connections: Dict[str, _PeerConnection] = {}
        self._inbound: List[FrameSocket] = []
        #: peer node address -> monotonic time we last heard a heartbeat
        self._last_heard: Dict[str, float] = {}
        self._listener: Optional[socket.socket] = None
        self._started = False
        self._dead = False
        self.address = f"{bind_host}:{bind_port}"
        self.name = name or "socket-node"
        # statistics
        self.messages_sent = 0
        self.messages_delivered = 0
        self.views_installed = 0
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.delivered_by_sender: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> str:
        """Bind, listen, start the acceptor and heartbeat monitor; idempotent."""
        with self._lock:
            if self._started:
                return self.address
            if self._dead:
                raise GroupCommunicationError(
                    f"group node {self.address} has been killed"
                )
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.bind_host, self.bind_port))
            listener.listen(64)
            listener.settimeout(_POLL_INTERVAL)
            self.bind_host, self.bind_port = listener.getsockname()[:2]
            self.address = f"{self.bind_host}:{self.bind_port}"
            self._listener = listener
            self._started = True
        threading.Thread(
            target=self._accept_loop,
            name=f"group-acceptor-{self.address}",
            daemon=True,
        ).start()
        threading.Thread(
            target=self._monitor_loop,
            name=f"group-monitor-{self.address}",
            daemon=True,
        ).start()
        return self.address

    def stop(self) -> None:
        """Graceful shutdown: leave every group, then close all sockets."""
        for group, members in list(self._local.items()):
            for member in list(members):
                try:
                    self.leave(group, member)
                except GroupCommunicationError:
                    pass
        self.kill()

    def kill(self) -> None:
        """Abrupt crash: close every socket without a goodbye.

        This is the chaos-suite way to kill a controller's group node; the
        survivors detect the silence through missed heartbeats.
        """
        with self._lock:
            if self._dead:
                return
            self._dead = True
            self._started = False  # a killed node cannot be restarted
            listener, self._listener = self._listener, None
            inbound, self._inbound = list(self._inbound), []
            connections, self._connections = dict(self._connections), {}
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        for frames in inbound:
            frames.close()
        for connection in connections.values():
            connection.frames.close()

    @property
    def is_running(self) -> bool:
        return self._started and not self._dead

    # -- GroupTransport contract: membership --------------------------------------------

    def join(
        self,
        group: str,
        member: str,
        on_message: Callable[[GroupMessage], None],
        on_view_change: Optional[Callable[[ViewChange], None]] = None,
    ) -> List[str]:
        """Add a locally hosted ``member`` to ``group``; returns the view."""
        self.start()
        with self._lock:
            local = self._local.setdefault(group, {})
            if member in local:
                raise GroupCommunicationError(
                    f"member {member!r} already joined group {group!r}"
                )
            # register before the network join: the sequencer pushes the new
            # view (and may start delivering) the moment we are accepted
            local[member] = (on_message, on_view_change)
        try:
            self._network_join(group, member)
        except BaseException:
            with self._lock:
                self._local.get(group, {}).pop(member, None)
            raise
        return self.members(group)

    def leave(self, group: str, member: str) -> None:
        with self._lock:
            local = self._local.get(group, {})
            if member not in local:
                return
            del local[member]
            state = self._groups.get(group)
            sequencer = None
            if state is not None and member in state.members:
                addresses = sorted(set(state.members.values()), key=_address_key)
                sequencer = addresses[0] if addresses else None
        if sequencer is not None:
            body = {"group": group, "member": member}
            if sequencer == self.address:
                self._handle_leave(body)
            else:
                try:
                    self._call(sequencer, MessageType.GROUP_LEAVE, body)
                except GroupCommunicationError:
                    pass  # sequencer unreachable: its detector will notice us
        with self._lock:
            state = self._groups.get(group)
            if state is not None:
                state.members.pop(member, None)

    def members(self, group: str) -> List[str]:
        with self._lock:
            state = self._groups.get(group)
            return sorted(state.members) if state is not None else []

    # -- GroupTransport contract: failure injection -------------------------------------

    def partition(self, sender: str, receiver: str) -> None:
        """Drop messages from member ``sender`` to member ``receiver``."""
        with self._lock:
            self._partitions.add((sender, receiver))

    def heal_partition(self, sender: str, receiver: str) -> None:
        with self._lock:
            self._partitions.discard((sender, receiver))

    # -- GroupTransport contract: messaging ---------------------------------------------

    def multicast(self, group: str, sender: str, payload: Any) -> GroupMessage:
        """Totally ordered reliable multicast; returns after all-member delivery."""
        with self._lock:
            if sender not in self._local.get(group, {}):
                raise GroupCommunicationError(
                    f"sender {sender!r} is not a member of group {group!r}"
                )
        body = {
            "group": group,
            "sender": sender,
            "payload": payload_to_wire(payload),
            "message_id": _next_message_id(),
        }
        redirect: Optional[str] = None
        last_error: Optional[Exception] = None
        for _attempt in range(self.heartbeat_threshold + 3):
            if redirect is not None:
                sequencer, redirect = redirect, None
            else:
                with self._lock:
                    state = self._groups.get(group)
                    if state is None or not state.members:
                        raise GroupCommunicationError(
                            f"no membership view for group {group!r}"
                        )
                    sequencer = min(set(state.members.values()), key=_address_key)
            if sequencer == self.address:
                reply = self._sequence_and_deliver(body)
            else:
                try:
                    reply = self._call(sequencer, MessageType.GROUP_MCAST, body)
                except _RpcTransportError as exc:
                    last_error = exc
                    # the sequencer looks dead: run failure handling, then
                    # retry against the re-elected one (possibly ourselves)
                    self._report_suspect(group, sequencer)
                    time.sleep(min(self.heartbeat_interval, 0.05))
                    continue
            if not reply.get("accepted"):
                target = reply.get("redirect")
                if target:
                    redirect = str(target)
                    continue
                raise GroupCommunicationError(
                    f"multicast to group {group!r} rejected:"
                    f" {reply.get('reason') or 'unknown'}"
                )
            errors = reply.get("errors") or []
            if errors:
                names = [name for name, _ in errors]
                raise GroupCommunicationError(
                    f"delivery failed at members {names}: {errors[0][1]}"
                )
            self.messages_sent += 1
            return GroupMessage(
                group=group,
                sender=sender,
                payload=payload,
                message_id=body["message_id"],
                sequence=int(reply["sequence"]),
            )
        raise GroupCommunicationError(
            f"multicast to group {group!r} failed after sequencer loss: {last_error}"
        )

    def send_to(self, group: str, sender: str, receiver: str, payload: Any) -> Any:
        """Point-to-point message within a group (used for state transfer)."""
        with self._lock:
            if (sender, receiver) in self._partitions:
                raise GroupCommunicationError(
                    f"network partition between {sender!r} and {receiver!r}"
                )
            state = self._groups.get(group)
            address = state.members.get(receiver) if state is not None else None
        if address is None:
            raise GroupCommunicationError(
                f"member {receiver!r} is not in group {group!r}"
            )
        body = {
            "group": group,
            "sender": sender,
            "receiver": receiver,
            "payload": payload_to_wire(payload),
            "message_id": _next_message_id(),
        }
        if address == self.address:
            self._deliver_send(body)
        else:
            self._call(address, MessageType.GROUP_SEND, body)
        self.messages_sent += 1
        return GroupMessage(
            group=group,
            sender=sender,
            payload=payload,
            message_id=body["message_id"],
            sequence=None,
        )

    # -- monitoring ---------------------------------------------------------------------

    def describe(self) -> dict:
        """Node status for the console's ``group`` command."""
        now = time.monotonic()
        with self._lock:
            groups = {}
            for group, state in self._groups.items():
                addresses = sorted(set(state.members.values()), key=_address_key)
                sequencer = addresses[0] if addresses else None
                groups[group] = {
                    "members": dict(state.members),
                    "view_id": state.view_id,
                    "sequence": state.sequence,
                    "sequencer": sequencer,
                    "is_sequencer": sequencer == self.address,
                }
            return {
                "transport": "tcp",
                "address": self.address,
                "running": self.is_running,
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_threshold": self.heartbeat_threshold,
                "heartbeats_sent": self.heartbeats_sent,
                "heartbeats_received": self.heartbeats_received,
                "last_heard_ago": {
                    address: round(now - at, 3)
                    for address, at in self._last_heard.items()
                    if address != self.address
                },
                "messages_sent": self.messages_sent,
                "messages_delivered": self.messages_delivered,
                "views_installed": self.views_installed,
                "delivered_by_sender": dict(self.delivered_by_sender),
                "groups": groups,
            }

    # -- join protocol ------------------------------------------------------------------

    def _network_join(self, group: str, member: str) -> None:
        body = {"group": group, "member": member, "address": self.address}
        candidates: List[str] = []
        with self._lock:
            state = self._groups.get(group)
            if state is not None:
                candidates.extend(
                    sorted(set(state.members.values()), key=_address_key)
                )
            for peer in self._peers:
                if peer not in candidates:
                    candidates.append(peer)
        tried: Set[str] = set()
        queue = [address for address in candidates if address != self.address]
        while queue:
            address = queue.pop(0)
            if address in tried or address == self.address:
                continue
            tried.add(address)
            try:
                reply = self._call(address, MessageType.GROUP_JOIN, body)
            except _RpcTransportError:
                continue
            if reply.get("accepted"):
                self._install_view(reply["view"])
                return
            redirect = reply.get("redirect")
            if redirect and redirect not in tried:
                queue.insert(0, str(redirect))
        # nobody out there knows the group: become (or stay) its sequencer
        self._local_join(group, member)

    def _local_join(self, group: str, member: str) -> None:
        with self._order_lock_for(group):
            with self._lock:
                state = self._groups.setdefault(group, _GroupState(group))
                if member in state.members:
                    raise GroupCommunicationError(
                        f"member {member!r} already joined group {group!r}"
                    )
                state.members[member] = self.address
                state.view_id += 1
                self._last_heard.setdefault(self.address, time.monotonic())
                self.views_installed += 1
                document = self._view_document(state, joined=[member], left=[])
            self._broadcast_view(document)

    def _handle_join(self, body: dict) -> dict:
        group = str(body.get("group"))
        member = str(body.get("member"))
        joiner_address = str(body.get("address"))
        with self._order_lock_for(group):
            with self._lock:
                state = self._groups.get(group)
                if state is None or not state.members or not self._local.get(group):
                    return {"accepted": False, "reason": "not-a-member"}
                sequencer = min(set(state.members.values()), key=_address_key)
                if sequencer != self.address:
                    return {"accepted": False, "redirect": sequencer}
                if member in state.members:
                    raise GroupCommunicationError(
                        f"member {member!r} already joined group {group!r}"
                    )
                state.members[member] = joiner_address
                state.view_id += 1
                self._last_heard[joiner_address] = time.monotonic()
                self.views_installed += 1
                document = self._view_document(state, joined=[member], left=[])
            # push the view to every member (including the joiner) before
            # acknowledging, so no delivery can precede the view anywhere
            self._broadcast_view(document)
            return {"accepted": True, "view": document}

    def _handle_leave(self, body: dict) -> dict:
        group = str(body.get("group"))
        member = str(body.get("member"))
        with self._order_lock_for(group):
            with self._lock:
                state = self._groups.get(group)
                if state is None or member not in state.members:
                    return {}
                del state.members[member]
                state.view_id += 1
                self.views_installed += 1
                document = self._view_document(state, joined=[], left=[member])
            self._broadcast_view(document)
        return {}

    # -- views --------------------------------------------------------------------------

    def _view_document(
        self, state: _GroupState, joined: List[str], left: List[str]
    ) -> dict:
        return {
            "group": state.name,
            "view_id": state.view_id,
            "seq": state.sequence,
            "members": dict(state.members),
            "joined": list(joined),
            "left": list(left),
        }

    def _broadcast_view(self, document: dict) -> None:
        addresses = sorted(
            {str(a) for a in dict(document["members"]).values()}, key=_address_key
        )
        for address in addresses:
            if address == self.address:
                self._notify_local_view(document)
            else:
                try:
                    self._call(address, MessageType.GROUP_VIEW, document)
                except GroupCommunicationError:
                    pass  # unreachable member: failure detection will handle it

    def _install_view(self, document: dict) -> None:
        group = str(document.get("group"))
        with self._lock:
            state = self._groups.setdefault(group, _GroupState(group))
            if int(document.get("view_id") or 0) <= state.view_id:
                return  # stale or duplicate view
            state.members = {
                str(name): str(address)
                for name, address in dict(document.get("members") or {}).items()
            }
            state.view_id = int(document["view_id"])
            state.sequence = max(state.sequence, int(document.get("seq") or 0))
            now = time.monotonic()
            for address in set(state.members.values()):
                self._last_heard.setdefault(address, now)
            self.views_installed += 1
        self._notify_local_view(document)

    def _notify_local_view(self, document: dict) -> None:
        group = str(document.get("group"))
        with self._lock:
            listeners = [
                callbacks[1]
                for _name, callbacks in sorted(self._local.get(group, {}).items())
                if callbacks[1] is not None
            ]
        view = ViewChange(
            group=group,
            members=sorted(dict(document.get("members") or {})),
            joined=[str(name) for name in document.get("joined") or []],
            left=[str(name) for name in document.get("left") or []],
            view_id=int(document.get("view_id") or 0),
        )
        for listener in listeners:
            try:
                listener(view)
            except Exception:  # noqa: BLE001 - view listeners must not break membership
                pass

    # -- sequencing and delivery --------------------------------------------------------

    def _handle_mcast(self, body: dict) -> dict:
        group = str(body.get("group"))
        with self._lock:
            state = self._groups.get(group)
            if state is None or not state.members:
                raise GroupCommunicationError(
                    f"node {self.address} has no view for group {group!r}"
                )
            sequencer = min(set(state.members.values()), key=_address_key)
        if sequencer != self.address:
            return {"accepted": False, "redirect": sequencer}
        return self._sequence_and_deliver(body)

    def _sequence_and_deliver(self, body: dict) -> dict:
        group = str(body.get("group"))
        with self._order_lock_for(group):
            with self._lock:
                state = self._groups.get(group)
                if state is None or str(body.get("sender")) not in state.members:
                    raise GroupCommunicationError(
                        f"sender {body.get('sender')!r} is not a member of"
                        f" group {group!r}"
                    )
                state.sequence += 1
                document = dict(body)
                document["sequence"] = state.sequence
                addresses = sorted(set(state.members.values()), key=_address_key)
            errors: List[list] = []
            dead: List[str] = []
            for address in addresses:
                if address == self.address:
                    errors.extend(self._deliver_local(document))
                    continue
                try:
                    reply = self._call(address, MessageType.GROUP_DELIVER, document)
                except _RpcTransportError:
                    # one more chance on a fresh connection before declaring
                    # the member dead — a member that fails two RPCs in a
                    # row has really crashed
                    try:
                        reply = self._call(
                            address, MessageType.GROUP_DELIVER, document
                        )
                    except _RpcTransportError:
                        dead.append(address)
                        continue
                errors.extend(reply.get("errors") or [])
            for address in dead:
                self._remove_address_as_sequencer(group, address)
            return {
                "accepted": True,
                "sequence": document["sequence"],
                "errors": errors,
            }

    def _deliver_local(self, document: dict) -> List[list]:
        """Deliver one sequenced message to every local member; returns errors."""
        group = str(document.get("group"))
        sender = str(document.get("sender"))
        sequence = document.get("sequence")
        with self._lock:
            state = self._groups.get(group)
            if state is not None and sequence and int(sequence) > state.sequence:
                # track the highest sequence seen so this node continues the
                # numbering correctly if it ever becomes the sequencer
                state.sequence = int(sequence)
            locals_ = sorted(self._local.get(group, {}).items())
            partitions = set(self._partitions)
        message = GroupMessage(
            group=group,
            sender=sender,
            payload=payload_from_wire(document.get("payload")),
            message_id=int(document.get("message_id") or 0),
            sequence=int(sequence) if sequence else None,
        )
        errors: List[list] = []
        for name, callbacks in locals_:
            if (sender, name) in partitions:
                continue  # injected partition: drop silently, like in-process
            try:
                callbacks[0](message)
                self.messages_delivered += 1
                self.delivered_by_sender[sender] = (
                    self.delivered_by_sender.get(sender, 0) + 1
                )
            except Exception as exc:  # noqa: BLE001 - report member failures
                errors.append([name, str(exc)])
        return errors

    def _deliver_send(self, body: dict) -> dict:
        group = str(body.get("group"))
        sender = str(body.get("sender"))
        receiver = str(body.get("receiver"))
        with self._lock:
            if (sender, receiver) in self._partitions:
                raise GroupCommunicationError(
                    f"network partition between {sender!r} and {receiver!r}"
                )
            entry = self._local.get(group, {}).get(receiver)
        if entry is None:
            raise GroupCommunicationError(
                f"member {receiver!r} is not in group {group!r}"
            )
        message = GroupMessage(
            group=group,
            sender=sender,
            payload=payload_from_wire(body.get("payload")),
            message_id=int(body.get("message_id") or 0),
            sequence=None,
        )
        entry[0](message)
        self.messages_delivered += 1
        self.delivered_by_sender[sender] = self.delivered_by_sender.get(sender, 0) + 1
        return {}

    # -- failure detection --------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._dead:
            time.sleep(self.heartbeat_interval)
            if self._dead:
                return
            try:
                self._heartbeat_round()
            except Exception:  # noqa: BLE001 - the monitor must survive anything
                pass

    def _heartbeat_round(self) -> None:
        now = time.monotonic()
        limit = self.heartbeat_interval * self.heartbeat_threshold
        with self._lock:
            groups = {
                group: sorted(set(state.members.values()), key=_address_key)
                for group, state in self._groups.items()
                if self._local.get(group) and state.members
            }
            last_heard = dict(self._last_heard)
        suspects: List[Tuple[str, str]] = []
        for group, addresses in groups.items():
            sequencer = addresses[0]
            if sequencer == self.address:
                # we sequence this group: beacon every member, expire the silent
                for address in addresses[1:]:
                    self._send_heartbeat(address)
                    if now - last_heard.get(address, now) > limit:
                        suspects.append((group, address))
            else:
                self._send_heartbeat(sequencer)
                if now - last_heard.get(sequencer, now) > limit:
                    suspects.append((group, sequencer))
        for group, address in suspects:
            self._report_suspect(group, address)

    def _report_suspect(self, group: str, dead_address: str) -> None:
        """Handle a suspected-dead peer: remove it or escalate to the sequencer."""
        # verify before acting: a peer that is slow to process heartbeats
        # still accepts TCP connections, a crashed one refuses instantly
        if self._probe(dead_address):
            with self._lock:
                self._last_heard[dead_address] = time.monotonic()
            return
        while True:
            with self._lock:
                state = self._groups.get(group)
                if state is None or dead_address not in state.members.values():
                    return
                survivors = sorted(
                    {
                        address
                        for address in state.members.values()
                        if address != dead_address
                    },
                    key=_address_key,
                )
            if not survivors:
                return
            if survivors[0] == self.address:
                self._remove_address_as_sequencer(group, dead_address)
                return
            try:
                self._call(
                    survivors[0],
                    MessageType.GROUP_SUSPECT,
                    {"group": group, "address": dead_address},
                )
                return
            except _RpcTransportError:
                # the would-be sequencer is unreachable too: drop it from our
                # local view and escalate to the next survivor
                with self._lock:
                    state = self._groups.get(group)
                    if state is None:
                        return
                    for name in [
                        name
                        for name, address in state.members.items()
                        if address == survivors[0]
                    ]:
                        del state.members[name]
                continue

    def _handle_suspect(self, body: dict) -> dict:
        group = str(body.get("group"))
        dead_address = str(body.get("address"))
        with self._lock:
            state = self._groups.get(group)
            if state is None or dead_address not in state.members.values():
                return {"removed": False}
            sequencer = min(set(state.members.values()), key=_address_key)
            if sequencer != self.address and sequencer != dead_address:
                return {"removed": False, "redirect": sequencer}
        # verify the accusation ourselves before evicting: one failed
        # heartbeat on the accuser's path must not evict a live member
        if self._probe(dead_address):
            self._last_heard[dead_address] = time.monotonic()
            return {"removed": False, "reason": "alive"}
        self._remove_address_as_sequencer(group, dead_address)
        return {"removed": True}

    def _probe(self, address: str) -> bool:
        """True when a fresh TCP dial to ``address`` succeeds."""
        host, _, port = address.rpartition(":")
        try:
            probe = socket.create_connection(
                (host, int(port)), timeout=min(self.heartbeat_interval, 1.0)
            )
        except (OSError, ValueError):
            return False
        try:
            probe.close()
        except OSError:  # pragma: no cover
            pass
        return True

    def _remove_address_as_sequencer(self, group: str, dead_address: str) -> None:
        """As (possibly just-become) sequencer: evict an address, push the view."""
        with self._order_lock_for(group):
            with self._lock:
                state = self._groups.get(group)
                if state is None:
                    return
                left = sorted(
                    name
                    for name, address in state.members.items()
                    if address == dead_address
                )
                if not left:
                    return
                for name in left:
                    del state.members[name]
                state.view_id += 1
                self.views_installed += 1
                document = self._view_document(state, joined=[], left=left)
            self._drop_connection(dead_address)
            self._broadcast_view(document)

    def _note_heartbeat(self, body: dict) -> None:
        address = body.get("address")
        if not address:
            return
        with self._lock:
            self._last_heard[str(address)] = time.monotonic()
            self.heartbeats_received += 1

    def _send_heartbeat(self, address: str) -> None:
        try:
            connection = self._connection(address)
        except _RpcTransportError:
            return
        if not connection.lock.acquire(blocking=False):
            return  # an RPC is in flight on this connection: liveness enough
        try:
            connection.frames.send_heartbeat({"address": self.address})
            self.heartbeats_sent += 1
        except (OSError, ConnectionClosed, ProtocolError):
            self._drop_connection(address)
        finally:
            connection.lock.release()

    # -- RPC plumbing -------------------------------------------------------------------

    def _order_lock_for(self, group: str) -> threading.RLock:
        with self._lock:
            lock = self._order_locks.get(group)
            if lock is None:
                lock = self._order_locks[group] = threading.RLock()
            return lock

    def _dial(self, address: str) -> FrameSocket:
        host, _, port = address.rpartition(":")
        try:
            sock = socket.create_connection(
                (host, int(port)), timeout=self.rpc_timeout
            )
        except (OSError, ValueError) as exc:
            raise _RpcTransportError(
                f"cannot reach group node at {address}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_POLL_INTERVAL)
        return FrameSocket(sock)

    def _connection(self, address: str) -> _PeerConnection:
        with self._lock:
            if self._dead:
                raise _RpcTransportError(f"group node {self.address} is dead")
            connection = self._connections.get(address)
        if connection is not None:
            return connection
        frames = self._dial(address)
        connection = _PeerConnection(frames)
        with self._lock:
            existing = self._connections.get(address)
            if existing is not None:
                frames.close()
                return existing
            if self._dead:
                frames.close()
                raise _RpcTransportError(f"group node {self.address} is dead")
            self._connections[address] = connection
        return connection

    def _drop_connection(self, address: str) -> None:
        with self._lock:
            connection = self._connections.pop(address, None)
        if connection is not None:
            connection.frames.close()

    def _call(self, address: str, message_type: MessageType, body: dict) -> dict:
        """One request/response RPC to the node at ``address``.

        Normally reuses the cached connection.  When that connection is busy
        with another in-flight RPC — which happens when a delivery handler
        issues a *nested* RPC back toward a node we are mid-call with — a
        one-shot connection is used instead: waiting on the shared lock in
        that situation forms a distributed lock cycle (A's handler waits on
        B's handler which waits on A's connection lock) that would stall
        until the timeouts cascade.
        """
        connection = self._connection(address)
        if connection.lock.acquire(blocking=False):
            try:
                return self._call_on(
                    connection.frames, address, message_type, body, cached=True
                )
            finally:
                connection.lock.release()
        frames = self._dial(address)
        try:
            return self._call_on(frames, address, message_type, body, cached=False)
        finally:
            frames.close()

    def _call_on(
        self,
        frames: FrameSocket,
        address: str,
        message_type: MessageType,
        body: dict,
        cached: bool,
    ) -> dict:
        deadline = time.monotonic() + self.rpc_timeout

        def idle() -> None:
            if self._dead:
                raise ConnectionClosed(f"group node {self.address} was killed")
            if time.monotonic() > deadline:
                raise ConnectionClosed(
                    f"group rpc to {address} timed out after {self.rpc_timeout}s"
                )

        try:
            frames.send(message_type, body)
            reply_type, reply = frames.recv(idle_callback=idle)
        except (ConnectionClosed, OSError, ProtocolError) as exc:
            if cached:
                self._drop_connection(address)
            raise _RpcTransportError(
                f"group rpc to {address} failed: {exc}"
            ) from exc
        # a completed round trip is proof of life, independent of how far
        # behind the peer is on processing our heartbeat frames
        with self._lock:
            self._last_heard[address] = time.monotonic()
        if reply_type is MessageType.ERROR:
            raise decode_error(reply)
        return reply

    # -- inbound service ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._dead:
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(_POLL_INTERVAL)
            frames = FrameSocket(sock)
            frames.on_heartbeat = self._note_heartbeat
            with self._lock:
                if self._dead:
                    frames.close()
                    return
                self._inbound.append(frames)
            threading.Thread(
                target=self._serve_connection,
                args=(frames,),
                name=f"group-serve-{self.address}",
                daemon=True,
            ).start()

    def _serve_connection(self, frames: FrameSocket) -> None:
        def idle() -> None:
            if self._dead:
                raise ConnectionClosed("node shutting down")

        handlers = {
            MessageType.GROUP_JOIN: self._handle_join,
            MessageType.GROUP_LEAVE: self._handle_leave,
            MessageType.GROUP_MCAST: self._handle_mcast,
            MessageType.GROUP_DELIVER: lambda body: {
                "errors": self._deliver_local(body)
            },
            MessageType.GROUP_SEND: self._deliver_send,
            MessageType.GROUP_VIEW: self._handle_view,
            MessageType.GROUP_SUSPECT: self._handle_suspect,
        }
        try:
            while not self._dead:
                try:
                    message_type, body = frames.recv(idle_callback=idle)
                except (ConnectionClosed, OSError, ProtocolError):
                    return
                handler = handlers.get(message_type)
                try:
                    if handler is None:
                        raise GroupCommunicationError(
                            f"unexpected frame {message_type.name} on a group node"
                        )
                    reply = handler(body)
                    frames.send(MessageType.OK, reply or {})
                except GroupCommunicationError as exc:
                    try:
                        frames.send(MessageType.ERROR, encode_error(exc))
                    except (OSError, ConnectionClosed, ProtocolError):
                        return
                except (OSError, ConnectionClosed, ProtocolError):
                    return
        finally:
            frames.close()
            with self._lock:
                if frames in self._inbound:
                    self._inbound.remove(frames)

    def _handle_view(self, body: dict) -> dict:
        self._install_view(body)
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.is_running else ("dead" if self._dead else "new")
        return f"SocketGroupTransport({self.address}, {state})"


__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_THRESHOLD",
    "DEFAULT_RPC_TIMEOUT",
    "SocketGroupTransport",
]
