"""Group communication substrate (JGroups stand-in, paper §4.1).

C-JDBC relies on JGroups' "reliable and ordered message delivery to
synchronize write requests and demarcate transactions" between replicated
controllers.  This package provides the same guarantees for in-process
groups:

* :class:`GroupChannel` — join/leave a named group, send totally ordered
  multicasts, receive view-change notifications;
* :class:`GroupTransport` — the shared in-process medium implementing total
  order (a sequencer), reliable delivery and failure injection for tests;
* :class:`SocketGroupTransport` — the same contract over real TCP sockets:
  one node per controller process, sequencer-based total order, heartbeat
  failure detection and view changes across processes.
"""

from repro.groupcomm.channel import GroupChannel
from repro.groupcomm.message import GroupMessage, ViewChange
from repro.groupcomm.socket_transport import SocketGroupTransport
from repro.groupcomm.transport import GroupTransport

__all__ = [
    "GroupChannel",
    "GroupMessage",
    "GroupTransport",
    "SocketGroupTransport",
    "ViewChange",
]
