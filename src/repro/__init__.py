"""Reproduction of "C-JDBC: Flexible Database Clustering Middleware" (USENIX 2004).

The package is organised as follows:

* :mod:`repro.sql` — in-memory SQL engine substrate (the "backend RDBMS");
* :mod:`repro.core` — the C-JDBC middleware itself: controller, virtual
  databases, client driver, request manager (scheduler, load balancer, query
  result cache), recovery log and checkpointing, management;
* :mod:`repro.groupcomm` — group-communication substrate (JGroups stand-in);
* :mod:`repro.distrib` — horizontal (replicated controllers) and vertical
  (nested controllers) scalability;
* :mod:`repro.workloads` — TPC-W and RUBiS workload generators;
* :mod:`repro.simulation` — discrete-event cluster performance model;
* :mod:`repro.bench` — measurement harness used by the benchmarks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
