"""Reproduction of "C-JDBC: Flexible Database Clustering Middleware" (USENIX 2004).

The public entry points live at the top level, mirroring how C-JDBC is
deployed — a declarative cluster descriptor plus a driver URL::

    import repro

    cluster = repro.load_cluster("cluster.json")
    connection = repro.connect("cjdbc://ctrl-a,ctrl-b/mydb?user=app&password=s")

The package is organised as follows:

* :mod:`repro.cluster` — the unified facade: descriptor loading, controller
  registry, ``cjdbc://`` URLs and the client-side connection pool;
* :mod:`repro.sql` — in-memory SQL engine substrate (the "backend RDBMS");
* :mod:`repro.core` — the C-JDBC middleware itself: controller, virtual
  databases, client driver, request manager (scheduler, load balancer, query
  result cache), recovery log and checkpointing, management;
* :mod:`repro.groupcomm` — group-communication substrate (JGroups stand-in);
* :mod:`repro.distrib` — horizontal (replicated controllers) and vertical
  (nested controllers) scalability;
* :mod:`repro.workloads` — TPC-W and RUBiS workload generators;
* :mod:`repro.simulation` — discrete-event cluster performance model;
* :mod:`repro.bench` — measurement harness used by the benchmarks.
"""

from repro.cluster import (
    Cluster,
    ConnectionPool,
    ControllerRegistry,
    connect,
    default_registry,
    load_cluster,
    load_descriptor,
    parse_url,
)
from repro.core import (
    BackendConfig,
    Controller,
    VirtualDatabaseConfig,
    build_virtual_database,
)

__version__ = "1.1.0"

__all__ = [
    "BackendConfig",
    "Cluster",
    "ConnectionPool",
    "Controller",
    "ControllerRegistry",
    "VirtualDatabaseConfig",
    "__version__",
    "build_virtual_database",
    "connect",
    "default_registry",
    "load_cluster",
    "load_descriptor",
    "parse_url",
]
