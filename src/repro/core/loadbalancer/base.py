"""Load balancer base class: read routing, write broadcast, early response.

Writes, commits and aborts are sent to every backend concerned; the
*wait-for-completion* policy (paper §2.4.4, "early response") decides when
the result is returned to the client: after the first backend completes,
after a majority, or after all of them.  When responding early the remaining
executions continue on background threads, and the per-transaction
connection mapping in :class:`repro.core.backend.DatabaseBackend` guarantees
that a later statement of the same transaction executes after the earlier
ones on each backend (the ordering guarantee called out in the paper).
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.backend import DatabaseBackend
from repro.core.loadbalancer.policies import LeastPendingRequestsFirst, ReadPolicy
from repro.core.request import AbstractRequest, RequestResult
from repro.errors import BackendError, NoMoreBackendError


class WaitForCompletion(Enum):
    """When to answer the client for a broadcast operation."""

    FIRST = "first"
    MAJORITY = "majority"
    ALL = "all"


@dataclass
class WriteOutcome:
    """Aggregate outcome of broadcasting a write to several backends."""

    result: RequestResult
    successes: List[str] = field(default_factory=list)
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def backends_executed(self) -> int:
        return len(self.successes)


class AbstractLoadBalancer:
    """Common machinery shared by the RAIDb levels."""

    #: human-readable replication level, overridden by subclasses
    raidb_level = "abstract"

    def __init__(
        self,
        read_policy: Optional[ReadPolicy] = None,
        wait_for_completion: WaitForCompletion = WaitForCompletion.ALL,
        max_writer_threads: int = 16,
    ):
        self.read_policy = read_policy or LeastPendingRequestsFirst()
        self.wait_for_completion = wait_for_completion
        self._executor = ThreadPoolExecutor(
            max_workers=max_writer_threads, thread_name_prefix="cjdbc-writer"
        )
        #: installed by the request manager; when a ``cost``-policy plan is
        #: executed, reads are chosen by live cost instead of the read policy
        self.cost_estimator = None
        #: called (no arguments) whenever table placement changes
        #: (``set_table_placement``, auto-placement of a created table); the
        #: request manager plugs plan-cache invalidation in here
        self.on_placement_change: Optional[Callable[[], None]] = None
        #: called with (backend, exception) whenever a backend fails a write;
        #: the request manager plugs backend disabling in here (paper §2.4.1)
        self.on_backend_failure: Optional[Callable[[DatabaseBackend, Exception], None]] = None
        #: called with (backend, exception) whenever a backend fails a read;
        #: the failure detector counts these against its error threshold
        self.on_backend_read_failure: Optional[
            Callable[[DatabaseBackend, Exception], None]
        ] = None
        self.reads_executed = 0
        self.writes_executed = 0
        self.batches_executed = 0
        #: reads transparently retried on another backend after a failure
        self.read_failovers = 0
        #: reads whose backend was chosen by the cost estimator (plan policy
        #: "cost") rather than the configured read policy
        self.cost_routed_reads = 0
        #: write/batch/demarcation failures observed after the early-response
        #: threshold had already answered the client (still routed through
        #: on_backend_failure so the failure detector sees them)
        self.late_failures = 0
        self._stats_lock = threading.Lock()

    # -- candidate selection (overridden per RAIDb level) -------------------------

    def read_candidates(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        raise NotImplementedError  # pragma: no cover - interface

    def write_targets(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        raise NotImplementedError  # pragma: no cover - interface

    # -- reads ---------------------------------------------------------------------

    def execute_read_request(
        self,
        request: AbstractRequest,
        backends: Sequence[DatabaseBackend],
        plan=None,
    ) -> RequestResult:
        """Route a read to one backend chosen by the policy (or the plan).

        When the planner handed down a :class:`~repro.planner.plan.RoutePlan`,
        its candidate set replaces placement re-derivation, and a ``cost``
        policy plan selects by live cost estimate instead of the configured
        read policy.  A stale plan (its backends all gone) falls back to
        deriving candidates from scratch.

        Inside a transaction, reads stick to a backend that already hosts the
        transaction when possible so they observe the transaction's own
        uncommitted writes.
        """
        candidates = None
        if plan is not None:
            names = plan.backend_name_set
            candidates = [b for b in backends if b.is_enabled and b.name in names]
        if not candidates:
            candidates = self.read_candidates(request, backends)
        if not candidates:
            raise NoMoreBackendError(
                f"no enabled backend hosts tables {list(request.tables)!r}"
            )
        sticky = False
        if request.transaction_id is not None:
            bound = [b for b in candidates if b.has_transaction(request.transaction_id)]
            if bound:
                candidates = bound
                sticky = True
        while True:
            backend = self._choose_read_backend(candidates, plan)
            try:
                result = backend.execute_request(request)
            except Exception as exc:  # noqa: BLE001 - reported, then failed over
                if self.on_backend_read_failure is not None:
                    self.on_backend_read_failure(backend, exc)
                if sticky:
                    # transaction-bound reads must observe the transaction's
                    # own uncommitted writes: no transparent failover
                    raise
                candidates = [
                    b for b in candidates if b is not backend and b.is_enabled
                ]
                if not candidates:
                    raise
                with self._stats_lock:
                    self.read_failovers += 1
                continue
            with self._stats_lock:
                self.reads_executed += 1
            return result

    def _choose_read_backend(
        self, candidates: Sequence[DatabaseBackend], plan
    ) -> DatabaseBackend:
        if (
            plan is not None
            and plan.policy == "cost"
            and self.cost_estimator is not None
        ):
            with self._stats_lock:
                self.cost_routed_reads += 1
            return self.cost_estimator.choose(plan.statement_class, candidates)
        return self.read_policy.choose(candidates)

    # -- writes -----------------------------------------------------------------------

    def _planned_targets(
        self, plan, backends: Sequence[DatabaseBackend]
    ) -> Optional[List[DatabaseBackend]]:
        """The plan's broadcast set, restricted to still-enabled backends.

        Returns None for plan-less calls and for stale plans (every planned
        backend disabled or removed), letting the caller re-derive targets.
        """
        if plan is None:
            return None
        names = plan.backend_name_set
        targets = [b for b in backends if b.is_enabled and b.name in names]
        return targets or None

    def execute_write_request(
        self,
        request: AbstractRequest,
        backends: Sequence[DatabaseBackend],
        plan=None,
    ) -> WriteOutcome:
        """Broadcast a write to every backend hosting the written tables."""
        targets = self._planned_targets(plan, backends)
        if targets is None:
            targets = self.write_targets(request, backends)
        if not targets:
            raise NoMoreBackendError(
                f"no enabled backend hosts tables {list(request.tables)!r}"
            )
        outcome = self._broadcast(targets, lambda backend: backend.execute_request(request))
        with self._stats_lock:
            self.writes_executed += 1
        return outcome

    def execute_batch_request(
        self,
        request: AbstractRequest,
        backends: Sequence[DatabaseBackend],
        plan=None,
    ) -> WriteOutcome:
        """Broadcast a whole batch to every backend hosting the written tables.

        Each backend receives *one* task that checks out a single connection
        and executes every parameter set on it — the per-statement broadcast
        overhead (thread hop, connection checkout, counters) is paid once per
        backend per batch instead of once per row.
        """
        targets = self._planned_targets(plan, backends)
        if targets is None:
            targets = self.write_targets(request, backends)
        if not targets:
            raise NoMoreBackendError(
                f"no enabled backend hosts tables {list(request.tables)!r}"
            )
        outcome = self._broadcast(targets, lambda backend: backend.execute_batch(request))
        with self._stats_lock:
            self.batches_executed += 1
        return outcome

    def broadcast_transaction_operation(
        self,
        backends: Sequence[DatabaseBackend],
        operation: Callable[[DatabaseBackend], object],
    ) -> WriteOutcome:
        """Broadcast a commit/rollback/begin to the given backends."""
        targets = [backend for backend in backends if backend.is_enabled]
        if not targets:
            raise NoMoreBackendError("no enabled backend left")
        return self._broadcast(targets, operation)

    # -- broadcast machinery --------------------------------------------------------------

    def _broadcast(
        self,
        targets: Sequence[DatabaseBackend],
        operation: Callable[[DatabaseBackend], object],
    ) -> WriteOutcome:
        successes: List[str] = []
        failures: Dict[str, str] = {}
        first_result: List[RequestResult] = []
        state_lock = threading.Lock()
        #: set once the caller has been answered (early response); failures
        #: observed after that are "late" — invisible to the caller's
        #: WriteOutcome but still routed through on_backend_failure so the
        #: failure detector disables the diverged backend
        answered = [False]

        def run(backend: DatabaseBackend):
            try:
                result = operation(backend)
            except Exception as exc:  # noqa: BLE001 - failure handling below
                with state_lock:
                    failures[backend.name] = str(exc)
                    late = answered[0]
                if late:
                    with self._stats_lock:
                        self.late_failures += 1
                if self.on_backend_failure is not None:
                    self.on_backend_failure(backend, exc)
                raise
            with state_lock:
                successes.append(backend.name)
                if isinstance(result, RequestResult) and not first_result:
                    first_result.append(result)
            return result

        if len(targets) == 1:
            # Fast path: no thread hop for single-backend virtual databases.
            # run() routes the failure through on_backend_failure exactly
            # like the multi-backend path before the BackendError is raised.
            try:
                run(targets[0])
            except Exception as exc:
                raise BackendError(
                    f"write failed on every backend: {failures}"
                ) from exc
            return self._snapshot_outcome(successes, failures, first_result)

        futures: Dict[Future, DatabaseBackend] = {
            self._executor.submit(run, backend): backend for backend in targets
        }
        required = self._required_successes(len(targets))
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            with state_lock:
                succeeded = len(successes)
            if succeeded >= required:
                break
            # Below the threshold we keep waiting for the stragglers — even
            # when the threshold is no longer reachable: a still-pending
            # success decides between "partial success" (failed backends are
            # disabled, there is no 2-phase commit) and "failed everywhere".
        with state_lock:
            if not successes and failures:
                answered[0] = True
                raise BackendError(f"write failed on every backend: {failures}")
            outcome = self._snapshot_outcome(successes, failures, first_result)
            answered[0] = True
        return outcome

    @staticmethod
    def _snapshot_outcome(
        successes: List[str],
        failures: Dict[str, str],
        first_result: List[RequestResult],
    ) -> WriteOutcome:
        """Freeze the broadcast state into the outcome handed to the caller.

        The returned object is a snapshot: backends still executing after an
        early response never mutate it under the caller's feet.
        """
        outcome = WriteOutcome(
            result=first_result[0] if first_result else RequestResult(update_count=0),
            successes=list(successes),
            failures=dict(failures),
        )
        outcome.result.backends_executed = len(outcome.successes)
        return outcome

    def _required_successes(self, target_count: int) -> int:
        if self.wait_for_completion is WaitForCompletion.FIRST:
            return 1
        if self.wait_for_completion is WaitForCompletion.MAJORITY:
            return target_count // 2 + 1
        return target_count

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def enabled(backends: Sequence[DatabaseBackend]) -> List[DatabaseBackend]:
        return [backend for backend in backends if backend.is_enabled]

    def placement_reason(self, request: AbstractRequest) -> str:
        """One line for EXPLAIN describing why placement allows a candidate set."""
        return f"{self.raidb_level} placement"

    def statistics(self) -> dict:
        return {
            "load_balancer": type(self).__name__,
            "raidb_level": self.raidb_level,
            "read_policy": self.read_policy.name,
            "wait_for_completion": self.wait_for_completion.value,
            "reads_executed": self.reads_executed,
            "writes_executed": self.writes_executed,
            "batches_executed": self.batches_executed,
            "read_failovers": self.read_failovers,
            "cost_routed_reads": self.cost_routed_reads,
            "late_failures": self.late_failures,
        }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False)
