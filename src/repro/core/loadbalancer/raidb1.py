"""RAIDb-1: full replication.

Every backend holds the complete database, so any backend can serve any
read and every write must be broadcast to all of them.  "Full replication is
easy to handle.  It does not require request parsing since every database
backend can handle any query.  Database updates, however, need to be sent to
all nodes, and performance suffers from the need to broadcast updates when
the number of backends increases" (paper §2.4.3).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.backend import DatabaseBackend
from repro.core.loadbalancer.base import AbstractLoadBalancer
from repro.core.request import AbstractRequest


class RAIDb1LoadBalancer(AbstractLoadBalancer):
    """Full replication: read one, write all."""

    raidb_level = "RAIDb-1"

    def read_candidates(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        return self.enabled(backends)

    def write_targets(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        return self.enabled(backends)

    def placement_reason(self, request: AbstractRequest) -> str:
        return "RAIDb-1 full replication: any enabled backend holds every table"
