"""Load balancer for a single-backend virtual database.

Used for the "no C-JDBC clustering, just the cache" configurations (the
RUBiS experiment of Table 1 runs C-JDBC with a single MySQL backend purely
for its query result cache) and as the baseline in the TPC-W experiments.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.backend import DatabaseBackend
from repro.core.loadbalancer.base import AbstractLoadBalancer
from repro.core.request import AbstractRequest


class SingleDBLoadBalancer(AbstractLoadBalancer):
    """Routes everything to the one enabled backend."""

    raidb_level = "SingleDB"

    def read_candidates(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        return self.enabled(backends)[:1]

    def write_targets(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        return self.enabled(backends)[:1]

    def placement_reason(self, request: AbstractRequest) -> str:
        return "SingleDB: every request routes to the only backend"
