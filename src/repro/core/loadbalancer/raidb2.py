"""RAIDb-2: partial replication.

"C-JDBC provides partial replication in which the user can define database
replication on a per-table basis.  Load balancers supporting partial
replication must parse the incoming queries and need to know the database
schema of each backend" (paper §2.4.3).

Reads are routed to a backend that hosts *all* the tables named by the
query (the paper notes the tables named in a query must all be present on
at least one backend).  Writes go to every backend hosting any of the
written tables.  DDL follows the replication map when one is configured,
otherwise it is broadcast everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.backend import DatabaseBackend
from repro.core.loadbalancer.base import AbstractLoadBalancer
from repro.core.request import AbstractRequest, RequestType
from repro.errors import NotReplicatedError


class RAIDb2LoadBalancer(AbstractLoadBalancer):
    """Partial replication: per-table replica placement."""

    raidb_level = "RAIDb-2"

    def __init__(self, *args, replication_map: Optional[Dict[str, Iterable[str]]] = None, **kwargs):
        """``replication_map`` maps table name -> backend names hosting it.

        When omitted, placement is discovered from each backend's schema
        (dynamic schema gathering); the map is only needed for DDL, which
        creates tables that do not exist anywhere yet.
        """
        super().__init__(*args, **kwargs)
        self.replication_map = {
            table.lower(): {name for name in backends}
            for table, backends in (replication_map or {}).items()
        }

    # -- placement ----------------------------------------------------------------

    def set_table_placement(self, table: str, backend_names: Iterable[str]) -> None:
        self.replication_map[table.lower()] = set(backend_names)
        if self.on_placement_change is not None:
            self.on_placement_change()

    def backends_for_table(self, table: str) -> Optional[set]:
        """Placement for ``table``: exact name first, then ``prefix%`` patterns.

        Patterns ending in ``%`` let configurations place dynamically named
        tables — typically the TPC-W best-seller temporary tables — on a
        fixed subset of backends, which is exactly how the paper "limits the
        temporary table creation to 2 backends" under partial replication.

        When several patterns match (``tpcw_%`` and ``tpcw_bestseller_%``),
        the *longest* matching prefix wins — the most specific placement —
        independent of the map's insertion order.
        """
        key = table.lower()
        exact = self.replication_map.get(key)
        if exact is not None:
            return exact
        best: Optional[set] = None
        best_length = -1
        for pattern, backends in self.replication_map.items():
            if not pattern.endswith("%"):
                continue
            prefix = pattern[:-1]
            if key.startswith(prefix) and len(prefix) > best_length:
                best = backends
                best_length = len(prefix)
        return best

    # -- candidate selection ---------------------------------------------------------

    def read_candidates(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        enabled = self.enabled(backends)
        if not request.tables:
            return enabled
        candidates = [b for b in enabled if b.has_tables(request.tables)]
        if not candidates:
            raise NotReplicatedError(
                f"no backend hosts all of {list(request.tables)!r}; "
                "partial replication requires co-located tables for each query"
            )
        return candidates

    def write_targets(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        enabled = self.enabled(backends)
        if not request.tables:
            return enabled
        if request.request_type is RequestType.DDL:
            return self._ddl_targets(request, enabled)
        targets = [b for b in enabled if b.has_any_table(request.tables)]
        return targets

    def placement_reason(self, request: AbstractRequest) -> str:
        if not request.tables:
            return "RAIDb-2 partial replication: table-less statement runs anywhere"
        return (
            "RAIDb-2 partial replication: co-located read over"
            f" {', '.join(request.tables)}"
        )

    def _ddl_targets(
        self, request: AbstractRequest, enabled: List[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        sql = request.sql.lstrip().upper()
        if sql.startswith("CREATE TABLE") and request.tables:
            placement = self.backends_for_table(request.tables[0])
            if placement is not None:
                return [b for b in enabled if b.name in placement]
        elif request.tables:
            # DROP/ALTER/CREATE INDEX: only backends already hosting the table
            targets = [b for b in enabled if b.has_any_table(request.tables)]
            if targets:
                return targets
        return enabled
