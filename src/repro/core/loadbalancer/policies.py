"""Read-selection policies.

"Among the backends that can treat a read request (all of them with full
replication), one is selected according to the load balancing algorithm.
Currently implemented algorithms are round robin, weighted round robin and
least pending requests first" (paper §2.4.3).  A policy can also be
user-defined: anything implementing :class:`ReadPolicy` works.
"""

from __future__ import annotations

import threading
from typing import List, Sequence

from repro.core.backend import DatabaseBackend
from repro.errors import NoMoreBackendError


class ReadPolicy:
    """Strategy choosing one backend among the candidates able to serve a read."""

    name = "abstract"

    def choose(self, candidates: Sequence[DatabaseBackend]) -> DatabaseBackend:
        raise NotImplementedError  # pragma: no cover - interface

    def _require_candidates(self, candidates: Sequence[DatabaseBackend]) -> None:
        if not candidates:
            raise NoMoreBackendError("no enabled backend can serve this read")


class RoundRobinPolicy(ReadPolicy):
    """Cycle through the candidate backends in order."""

    name = "round_robin"

    def __init__(self):
        self._counter = 0
        self._lock = threading.Lock()

    def choose(self, candidates: Sequence[DatabaseBackend]) -> DatabaseBackend:
        self._require_candidates(candidates)
        with self._lock:
            index = self._counter % len(candidates)
            self._counter += 1
        return candidates[index]


class WeightedRoundRobinPolicy(ReadPolicy):
    """Round robin where a backend with weight *w* receives *w* consecutive slots.

    The schedule is recomputed lazily whenever the candidate set changes, so
    enabling/disabling backends or changing weights is picked up on the next
    read.
    """

    name = "weighted_round_robin"

    def __init__(self):
        self._lock = threading.Lock()
        self._schedule: List[str] = []
        self._schedule_key: tuple = ()
        self._position = 0

    def choose(self, candidates: Sequence[DatabaseBackend]) -> DatabaseBackend:
        self._require_candidates(candidates)
        by_name = {backend.name: backend for backend in candidates}
        key = tuple(sorted((backend.name, backend.weight) for backend in candidates))
        with self._lock:
            if key != self._schedule_key:
                self._schedule = [
                    name
                    for name, weight in sorted(
                        ((b.name, max(1, b.weight)) for b in candidates)
                    )
                    for _ in range(weight)
                ]
                self._schedule_key = key
                self._position = 0
            name = self._schedule[self._position % len(self._schedule)]
            self._position += 1
        return by_name[name]


class LeastPendingRequestsFirst(ReadPolicy):
    """Send the read to the backend with the fewest in-flight requests.

    This is the policy used in the paper's TPC-W evaluation ("The load
    balancing policy is Least Pending Requests First", §6.2).
    """

    name = "least_pending_requests_first"

    def __init__(self):
        self._tie_breaker = 0
        self._lock = threading.Lock()

    def choose(self, candidates: Sequence[DatabaseBackend]) -> DatabaseBackend:
        self._require_candidates(candidates)
        least_pending = min(backend.pending_requests for backend in candidates)
        tied = [backend for backend in candidates if backend.pending_requests == least_pending]
        # Rotate among equally loaded backends so an idle cluster still spreads
        # reads instead of always hitting the first backend.
        with self._lock:
            choice = tied[self._tie_breaker % len(tied)]
            self._tie_breaker += 1
        return choice


def policy_from_name(name: str) -> ReadPolicy:
    """Factory used by the configuration layer."""
    lowered = name.strip().lower().replace("-", "_").replace(" ", "_")
    if lowered in ("round_robin", "rr"):
        return RoundRobinPolicy()
    if lowered in ("weighted_round_robin", "wrr"):
        return WeightedRoundRobinPolicy()
    if lowered in ("least_pending_requests_first", "lprf"):
        return LeastPendingRequestsFirst()
    raise ValueError(f"unknown load balancing policy {name!r}")
