"""Load balancers (paper §2.4.3) and read-selection policies.

C-JDBC names its replication levels after RAID: RAIDb-0 (partitioning,
no replication), RAIDb-1 (full replication) and RAIDb-2 (partial
replication).  The load balancer routes reads to one backend chosen by a
policy (round robin, weighted round robin, least pending requests first)
and broadcasts writes to every backend hosting the written tables, with the
early-response optimisation of §2.4.4 controlling when the client gets its
answer back.
"""

from repro.core.loadbalancer.base import (
    AbstractLoadBalancer,
    WaitForCompletion,
    WriteOutcome,
)
from repro.core.loadbalancer.policies import (
    LeastPendingRequestsFirst,
    RoundRobinPolicy,
    WeightedRoundRobinPolicy,
    policy_from_name,
)
from repro.core.loadbalancer.raidb0 import RAIDb0LoadBalancer
from repro.core.loadbalancer.raidb1 import RAIDb1LoadBalancer
from repro.core.loadbalancer.raidb2 import RAIDb2LoadBalancer
from repro.core.loadbalancer.single import SingleDBLoadBalancer

__all__ = [
    "AbstractLoadBalancer",
    "LeastPendingRequestsFirst",
    "RAIDb0LoadBalancer",
    "RAIDb1LoadBalancer",
    "RAIDb2LoadBalancer",
    "RoundRobinPolicy",
    "SingleDBLoadBalancer",
    "WaitForCompletion",
    "WeightedRoundRobinPolicy",
    "WriteOutcome",
    "policy_from_name",
]
