"""RAIDb-0: partitioning without replication.

Each table lives on exactly one backend.  Reads and writes are routed to the
backend hosting the referenced tables; queries spanning tables placed on
different backends are rejected, exactly like the current C-JDBC limitation
described in §2.1 ("the tables named in a particular query must all be
present on at least one backend").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.backend import DatabaseBackend
from repro.core.loadbalancer.base import AbstractLoadBalancer
from repro.core.request import AbstractRequest, RequestType
from repro.errors import NotReplicatedError


class RAIDb0LoadBalancer(AbstractLoadBalancer):
    """Partitioning: each table on exactly one backend."""

    raidb_level = "RAIDb-0"

    def __init__(self, *args, partition_map: Optional[Dict[str, str]] = None, **kwargs):
        """``partition_map`` maps table name -> backend name (for DDL routing)."""
        super().__init__(*args, **kwargs)
        self.partition_map = {
            table.lower(): backend for table, backend in (partition_map or {}).items()
        }

    def set_table_placement(self, table: str, backend_name: str) -> None:
        self.partition_map[table.lower()] = backend_name
        if self.on_placement_change is not None:
            self.on_placement_change()

    def placement_reason(self, request: AbstractRequest) -> str:
        if not request.tables:
            return "RAIDb-0 partitioning: table-less statement runs anywhere"
        return (
            "RAIDb-0 partitioning: partition hosting"
            f" {', '.join(request.tables)}"
        )

    def read_candidates(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        enabled = self.enabled(backends)
        if not request.tables:
            return enabled
        candidates = [b for b in enabled if b.has_tables(request.tables)]
        if not candidates:
            raise NotReplicatedError(
                f"tables {list(request.tables)!r} are not co-located on any backend "
                "(RAIDb-0 does not support distributed execution of a single query)"
            )
        return candidates

    def write_targets(
        self, request: AbstractRequest, backends: Sequence[DatabaseBackend]
    ) -> List[DatabaseBackend]:
        enabled = self.enabled(backends)
        if not request.tables:
            return enabled
        if request.request_type is RequestType.DDL:
            sql = request.sql.lstrip().upper()
            if sql.startswith("CREATE TABLE"):
                target_name = self.partition_map.get(request.tables[0].lower())
                if target_name is not None:
                    placed = [b for b in enabled if b.name == target_name]
                    if placed:
                        return placed
                # Unmapped table: place it on the least-loaded backend so the
                # partitioning stays balanced by default.
                if enabled:
                    chosen = min(enabled, key=lambda b: len(b.tables))
                    self.partition_map[request.tables[0].lower()] = chosen.name
                    if self.on_placement_change is not None:
                        self.on_placement_change()
                    return [chosen]
                return []
        targets = [b for b in enabled if b.has_any_table(request.tables)]
        if not targets:
            raise NotReplicatedError(
                f"no backend hosts {list(request.tables)!r} in this partitioned database"
            )
        return targets
