"""Virtual database: the single database view exposed to clients (paper §2.2).

A virtual database groups an authentication manager, a request manager
(scheduler + load balancer + optional cache and recovery log) and a set of
database backends.  It also owns the checkpointing service used to take
backend snapshots and to re-integrate failed or new backends.

The virtual database is where the execution pipeline is *assembled*: it
points the pipeline's authenticate stage at its authentication manager and
installs the interceptors declared by the cluster descriptor (or passed
programmatically), so cross-cutting behaviour is composed here rather than
hard-wired into the request manager.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.authentication import AuthenticationManager
from repro.core.backend import DatabaseBackend
from repro.core.failover import BackendResynchronizer, FailureDetector
from repro.core.faults import FaultInjector
from repro.core.pipeline import (
    Interceptor,
    InterceptorSpec,
    MetricsInterceptor,
    Pipeline,
    build_interceptors,
)
from repro.core.recovery.checkpoint import CheckpointingService
from repro.core.recovery.recovery_log import MemoryRecoveryLog, RecoveryLog
from repro.core.request import RequestResult
from repro.core.request_manager import RequestManager
from repro.errors import AuthenticationError, CheckpointError, CJDBCError
from repro.sql.engine import DatabaseEngine


class VirtualDatabase:
    """A single virtual database hosted by a controller."""

    def __init__(
        self,
        name: str,
        request_manager: RequestManager,
        authentication_manager: Optional[AuthenticationManager] = None,
        checkpointing_service: Optional[CheckpointingService] = None,
        group_name: Optional[str] = None,
        interceptors: Sequence[InterceptorSpec] = (),
        failure_detector: Optional[FailureDetector] = None,
        read_error_threshold: int = 3,
        auto_resync: bool = False,
    ):
        self.name = name
        self.request_manager = request_manager
        self.authentication_manager = authentication_manager or AuthenticationManager(
            transparent=True
        )
        # assemble the execution pipeline: authenticate against this vdb's
        # manager and install the declaratively configured interceptors
        request_manager.pipeline.use_authentication_manager(self.authentication_manager)
        for interceptor in build_interceptors(interceptors):
            if isinstance(interceptor, MetricsInterceptor) and (
                request_manager.pipeline.has_interceptor(MetricsInterceptor.name)
            ):
                # metrics is always installed implicitly; a descriptor listing
                # it is a statement of intent, not a second copy
                continue
            request_manager.pipeline.add_interceptor(interceptor)
        recovery_log = (
            request_manager.recovery_log
            if request_manager.recovery_log is not None
            else MemoryRecoveryLog()
        )
        self.checkpointing_service = checkpointing_service or CheckpointingService(recovery_log)
        # failure detection & self-healing: the detector owns the disable
        # decision (write failures disable immediately, read failures count
        # against a threshold); the resynchronizer re-integrates disabled
        # backends from the recovery log while the cluster keeps serving
        self.failure_detector = failure_detector or FailureDetector(
            request_manager, read_error_threshold=read_error_threshold
        )
        request_manager.failure_detector = self.failure_detector
        self.resynchronizer = BackendResynchronizer(self)
        self._auto_resync = False
        if auto_resync:
            self.enable_auto_resync()
        #: group name used for horizontal scalability (JGroups group in the paper)
        self.group_name = group_name
        #: engines backing each backend, registered so the checkpointing
        #: service can dump/restore them (only meaningful for local backends)
        self._backend_engines: Dict[str, DatabaseEngine] = {}
        self._lock = threading.RLock()
        self.total_connections = 0

    # -- backend management -----------------------------------------------------------

    @property
    def backends(self) -> List[DatabaseBackend]:
        return self.request_manager.backends

    def add_backend(
        self,
        backend: DatabaseBackend,
        engine: Optional[DatabaseEngine] = None,
        enable: bool = True,
    ) -> None:
        """Register a backend; ``engine`` enables checkpoint/restore for it."""
        self.request_manager.add_backend(backend)
        if engine is not None:
            with self._lock:
                self._backend_engines[backend.name] = engine
        if enable:
            backend.enable()

    def get_backend(self, backend_name: str) -> DatabaseBackend:
        return self.request_manager.get_backend(backend_name)

    def backend_engine(self, backend_name: str) -> Optional[DatabaseEngine]:
        with self._lock:
            return self._backend_engines.get(backend_name)

    def enable_backend(self, backend_name: str, from_checkpoint: Optional[str] = None) -> None:
        """Enable a backend, optionally recovering it from a checkpoint first."""
        backend = self.get_backend(backend_name)
        if from_checkpoint is not None:
            engine = self.backend_engine(backend_name)
            if engine is None:
                raise CheckpointError(
                    f"backend {backend_name!r} has no registered engine to restore into"
                )
            self.checkpointing_service.recover_backend(
                backend,
                engine,
                checkpoint_name=from_checkpoint,
                replay=self.request_manager.replay_log_entries,
                enable=True,
            )
            return
        backend.enable()

    def disable_backend(self, backend_name: str, with_checkpoint: bool = False) -> Optional[str]:
        """Disable a backend; optionally take a checkpoint of it first.

        Returns the checkpoint name when one was taken.
        """
        backend = self.get_backend(backend_name)
        if with_checkpoint:
            engine = self.backend_engine(backend_name)
            if engine is None:
                raise CheckpointError(
                    f"backend {backend_name!r} has no registered engine to dump"
                )
            checkpoint = self.checkpointing_service.checkpoint_backend(
                backend,
                engine,
                re_enable=False,
                replay=self.request_manager.replay_log_entries,
            )
            return checkpoint.name
        backend.disable()
        return None

    def checkpoint_backend(self, backend_name: str, name: Optional[str] = None) -> str:
        """Take an online checkpoint of one backend (it is re-enabled after)."""
        backend = self.get_backend(backend_name)
        engine = self.backend_engine(backend_name)
        if engine is None:
            raise CheckpointError(f"backend {backend_name!r} has no registered engine to dump")
        checkpoint = self.checkpointing_service.checkpoint_backend(
            backend,
            engine,
            name=name,
            re_enable=True,
            replay=self.request_manager.replay_log_entries,
        )
        return checkpoint.name

    def recover_backend(self, backend_name: str, checkpoint_name: Optional[str] = None) -> int:
        """Re-integrate a failed or new backend from a checkpoint + log replay."""
        backend = self.get_backend(backend_name)
        engine = self.backend_engine(backend_name)
        if engine is None:
            raise CheckpointError(f"backend {backend_name!r} has no registered engine to restore")
        return self.checkpointing_service.recover_backend(
            backend,
            engine,
            checkpoint_name=checkpoint_name,
            replay=self.request_manager.replay_log_entries,
            enable=True,
        )

    # -- failure detection / self-healing ---------------------------------------------

    def enable_auto_resync(self) -> None:
        """Resynchronize every backend the failure detector disables.

        Once enabled, a backend that fails a write (or crosses the read
        error threshold) is disabled, then handed to the background
        resynchronizer, which restores it from the last dump checkpoint,
        replays the recovery-log tail online, catches up under a brief write
        barrier and re-enables it — live re-integration, no operator in the
        loop.  (A crashed backend keeps failing the replay; the worker
        retries a few times and records the outcome.)
        """
        if self._auto_resync:
            return
        self._auto_resync = True
        self.failure_detector.add_listener(self._on_backend_disabled_event)

    def disable_auto_resync(self) -> None:
        if self._auto_resync:
            self._auto_resync = False
            self.failure_detector.remove_listener(self._on_backend_disabled_event)

    @property
    def auto_resync(self) -> bool:
        return self._auto_resync

    def _on_backend_disabled_event(self, backend, exc, event) -> None:
        self.resynchronizer.schedule(backend.name)

    def resynchronize_backend(self, backend_name: str) -> int:
        """Synchronously re-integrate one disabled backend; returns entries replayed."""
        return self.resynchronizer.resynchronize(backend_name)

    def fault_injector(self, backend_name: str, seed: int = 0) -> FaultInjector:
        """The fault injector of one backend, created idle on first access.

        This is the runtime toggle for chaos testing: arm/disarm
        :class:`repro.core.faults.FaultRule` schedules, crash and recover
        the backend, read injection statistics.
        """
        return self.get_backend(backend_name).ensure_fault_injector(seed=seed)

    # -- client entry points ----------------------------------------------------------------

    def check_credentials(self, login: str, password: str) -> None:
        self.authentication_manager.authenticate(login, password)
        with self._lock:
            self.total_connections += 1

    def execute(
        self,
        sql: str,
        parameters: Sequence[object] = (),
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> RequestResult:
        return self.request_manager.execute(
            sql, parameters, login=login, transaction_id=transaction_id
        )

    def explain_route(self, sql: str, login: str = "") -> RequestResult:
        """Plan ``sql`` without executing it, as a tabular result.

        Backs the driver's ``EXPLAIN ROUTE <sql>`` prefix and the console
        ``explain`` command: two columns (``property``, ``value``) listing
        the plan kind, chosen backend(s), per-candidate cost estimates and
        — for scatter-gather reads — the merge strategy and fragments.
        """
        plan = self.request_manager.explain(sql, login=login)
        rows = [list(row) for row in plan.explain_rows()]
        return RequestResult(columns=["property", "value"], rows=rows, update_count=-1)

    def prepare(self, sql: str):
        """Parse ``sql`` once; the handle's executions skip classification.

        Returns a :class:`repro.core.request_manager.PreparedStatementHandle`
        whose ``execute(parameters, ...)`` and ``execute_batch(parameter_sets,
        ...)`` instantiate requests straight from the parsed template.  This
        is the controller half of the driver's
        :class:`repro.core.driver.PreparedStatement`.
        """
        return self.request_manager.prepare(sql)

    def execute_batch(
        self,
        sql: str,
        parameter_sets: Sequence[Sequence[object]],
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> RequestResult:
        """Execute a write template with N parameter sets as one batch."""
        return self.request_manager.execute_batch(
            sql, parameter_sets, login=login, transaction_id=transaction_id
        )

    def begin(self, login: str = "", transaction_id: Optional[int] = None) -> int:
        return self.request_manager.begin(login, transaction_id=transaction_id)

    def commit(self, transaction_id: int, login: str = "") -> None:
        self.request_manager.commit(transaction_id, login)

    def rollback(self, transaction_id: int, login: str = "") -> None:
        self.request_manager.rollback(transaction_id, login)

    # -- pipeline composition -------------------------------------------------------------------

    @property
    def pipeline(self) -> Pipeline:
        """The execution pipeline every request to this database flows through."""
        return self.request_manager.pipeline

    def add_interceptor(self, interceptor: InterceptorSpec) -> Interceptor:
        """Install an interceptor (instance, built-in name or spec mapping)."""
        built = build_interceptors([interceptor])[0]
        self.pipeline.add_interceptor(built)
        return built

    def remove_interceptor(self, name: str) -> Interceptor:
        return self.pipeline.remove_interceptor(name)

    # -- monitoring -----------------------------------------------------------------------------

    def statistics(self) -> dict:
        stats = self.request_manager.statistics()
        stats["virtual_database"] = self.name
        stats["total_connections"] = self.total_connections
        stats["checkpoints"] = self.checkpointing_service.checkpoint_names()
        stats["auto_resync"] = self._auto_resync
        stats["resynchronizer"] = self.resynchronizer.statistics()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualDatabase({self.name!r}, backends={[b.name for b in self.backends]})"
