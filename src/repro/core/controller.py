"""The C-JDBC controller (paper §2.2).

"The C-JDBC controller is a Java program that acts as a proxy between the
C-JDBC driver and the database backends.  The controller exposes a single
database view, called a virtual database, to the C-JDBC driver and thus to
the application.  A controller can host multiple virtual databases."

In this reproduction the controller is an in-process object; the C-JDBC
driver talks to it through direct method calls (the serialization boundary
of the real system is immaterial to the clustering logic being reproduced).
Controllers can still be replicated (horizontal scalability, see
:mod:`repro.distrib`) and nested (vertical scalability) exactly like in the
paper.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core.management.registry import MBeanRegistry
from repro.core.virtualdb import VirtualDatabase
from repro.errors import ControllerError, UnknownVirtualDatabaseError


class Controller:
    """Hosts virtual databases and exposes them to C-JDBC drivers."""

    def __init__(self, name: str = "controller", jmx_enabled: bool = True, register: bool = True):
        self.name = name
        self._virtual_databases: Dict[str, VirtualDatabase] = {}
        self._lock = threading.RLock()
        self._shutdown = False
        #: TCP front-end serving this controller (see repro.net), or None
        self.network_server = None
        #: JMX-like registry for monitoring and administration (Figure 1)
        self.mbean_registry = MBeanRegistry() if jmx_enabled else None
        if self.mbean_registry is not None:
            self.mbean_registry.register(f"controller:{self.name}", self)
        if register:
            # Make the controller addressable by name in cjdbc:// URLs (the
            # in-process stand-in for DNS resolution of controller hosts).
            # Imported lazily: repro.cluster depends on repro.core.
            from repro.cluster.registry import default_registry

            default_registry.register(self)

    # -- virtual database management ------------------------------------------------

    def add_virtual_database(self, virtual_database: VirtualDatabase) -> None:
        with self._lock:
            if virtual_database.name.lower() in self._virtual_databases:
                raise ControllerError(
                    f"virtual database {virtual_database.name!r} already hosted"
                )
            self._virtual_databases[virtual_database.name.lower()] = virtual_database
        if self.mbean_registry is not None:
            self.mbean_registry.register(
                f"virtualdatabase:{virtual_database.name}", virtual_database
            )

    def remove_virtual_database(self, name: str) -> None:
        with self._lock:
            self._virtual_databases.pop(name.lower(), None)
        if self.mbean_registry is not None:
            self.mbean_registry.unregister(f"virtualdatabase:{name}")

    def get_virtual_database(self, name: str) -> VirtualDatabase:
        if self._shutdown:
            raise ControllerError(f"controller {self.name!r} is shut down")
        with self._lock:
            virtual_database = self._virtual_databases.get(name.lower())
        if virtual_database is None:
            raise UnknownVirtualDatabaseError(
                f"controller {self.name!r} does not host virtual database {name!r}"
            )
        return virtual_database

    def has_virtual_database(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._virtual_databases

    @property
    def virtual_database_names(self) -> List[str]:
        with self._lock:
            return sorted(vdb.name for vdb in self._virtual_databases.values())

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown

    def attach_network_server(self, server) -> None:
        """Bind a :class:`repro.net.server.ControllerServer` to this controller.

        The controller owns the server from here on: :meth:`shutdown` drains
        and stops it, and :meth:`statistics` reports its counters under a
        ``network`` key.
        """
        self.network_server = server

    def shutdown(self) -> None:
        """Stop accepting new work; used by fail-over tests and examples."""
        self._shutdown = True
        server, self.network_server = self.network_server, None
        if server is not None:
            server.stop()

    def restart(self) -> None:
        self._shutdown = False

    # -- monitoring ---------------------------------------------------------------------

    def statistics(self) -> dict:
        with self._lock:
            virtual_databases = list(self._virtual_databases.values())
        per_vdb = {vdb.name: vdb.statistics() for vdb in virtual_databases}
        # controller-wide request totals, summed over every hosted virtual
        # database's pipeline metrics (reads/writes/begins/commits/rollbacks/
        # cache_hits/errors/total)
        requests: Dict[str, int] = {}
        for stats in per_vdb.values():
            for counter, value in stats.get("requests", {}).items():
                requests[counter] = requests.get(counter, 0) + value
        stats = {
            "controller": self.name,
            "shutdown": self._shutdown,
            "requests": requests,
            "virtual_databases": per_vdb,
        }
        server = self.network_server
        if server is not None:
            stats["network"] = server.statistics()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Controller({self.name!r}, vdbs={self.virtual_database_names})"
