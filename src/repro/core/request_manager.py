"""The request manager: the core of the C-JDBC controller (paper §2.4).

"The request manager contains the core functionality of the C-JDBC
controller.  It is composed of a scheduler, a load balancer and two optional
components: a recovery log and a query result cache.  Each of these
components can be superseded by a user-specified implementation."

The flow implemented here follows the paper:

* reads: scheduler → query result cache (on miss) → load balancer;
* writes / commits / aborts: scheduler (total order) → recovery log →
  load balancer broadcast → cache invalidation;
* a backend failing a write, commit or abort is disabled (no 2-phase
  commit); re-integration goes through the recovery subsystem;
* optimizations: parallel transactions (per-transaction backend
  connections), early response to update/commit/abort (wait-for-completion
  policy in the load balancer) and lazy transaction begin.

That flow is realised by the composable pipeline of
:mod:`repro.core.pipeline`: the entry points here (:meth:`execute`,
:meth:`execute_request`, :meth:`begin`, :meth:`commit`, :meth:`rollback`)
are thin shims that wrap the request in a
:class:`repro.core.pipeline.RequestContext` and run it through the stage
chain; the methods prefixed ``_execute_*_on_backends`` and the transaction
bookkeeping helpers are the stage callbacks.  Cross-cutting behaviour
(metrics, tracing, slow-query logging, rate limiting, ...) attaches as
interceptors on :attr:`pipeline` instead of being patched into this class.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.backend import DatabaseBackend
from repro.core.cache import ResultCache
from repro.core.loadbalancer.base import AbstractLoadBalancer
from repro.core.pipeline import (
    InterceptorSpec,
    MetricsInterceptor,
    Pipeline,
    RequestContext,
    build_interceptors,
)
from repro.core.recovery.recovery_log import RecoveryLog
from repro.core.request import (
    AbstractRequest,
    BatchWriteRequest,
    BeginRequest,
    CommitRequest,
    RequestResult,
    RollbackRequest,
)
from repro.core.requestparser import ParsedTemplate, RequestFactory
from repro.core.scheduler import AbstractScheduler, OptimisticTransactionLevelScheduler
from repro.errors import CJDBCError
from repro.planner import (
    QueryPlanner,
    RoutePlan,
    RoutingConfig,
    ScatterGatherExecutor,
)


class PreparedStatementHandle:
    """Controller-side prepared statement: a parsed template bound to a manager.

    Obtained from :meth:`RequestManager.prepare` (or
    :meth:`repro.core.virtualdb.VirtualDatabase.prepare`); repeated
    executions instantiate requests straight from the template, skipping SQL
    classification and table extraction entirely — the statement is parsed
    once for the lifetime of the handle, not once per execution.
    """

    __slots__ = ("_manager", "sql", "template")

    def __init__(self, manager: "RequestManager", sql: str, template: ParsedTemplate):
        self._manager = manager
        self.sql = sql
        self.template = template

    @property
    def is_write(self) -> bool:
        """True for INSERT/UPDATE/DELETE — the statements that can batch."""
        return self.template.is_write

    @property
    def is_read_only(self) -> bool:
        return self.template.is_read_only

    @property
    def tables(self):
        return self.template.tables

    def execute(
        self,
        parameters: Sequence[object] = (),
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> RequestResult:
        request = self.template.instantiate(parameters, login, transaction_id)
        return self._manager.execute_request(request)

    def execute_batch(
        self,
        parameter_sets: Sequence[Sequence[object]],
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> RequestResult:
        """Run every parameter set through the pipeline as one batch.

        Non-write templates and empty batches are rejected by
        :meth:`ParsedTemplate.instantiate_batch`.
        """
        request = self.template.instantiate_batch(parameter_sets, login, transaction_id)
        return self._manager.execute_request(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        text = self.sql if len(self.sql) <= 60 else self.sql[:57] + "..."
        return f"PreparedStatementHandle({text!r})"


#: upper bounds of the ``statements_per_batch`` histogram buckets
_BATCH_HISTOGRAM_BOUNDS = (1, 4, 16, 64, 256, 1024)


def _batch_histogram_bucket(size: int) -> str:
    lower = 1
    for bound in _BATCH_HISTOGRAM_BOUNDS:
        if size <= bound:
            return str(bound) if bound == lower else f"{lower}-{bound}"
        lower = bound + 1
    return f">{_BATCH_HISTOGRAM_BOUNDS[-1]}"


@dataclass
class TransactionContext:
    """Controller-side state of one client transaction."""

    transaction_id: int
    login: str
    begun: bool = False
    #: backends that have started this transaction (lazy transaction begin)
    participating_backends: List[str] = field(default_factory=list)


class RequestManager:
    """Schedules, caches, balances, logs and executes client requests."""

    def __init__(
        self,
        backends: Sequence[DatabaseBackend],
        scheduler: Optional[AbstractScheduler] = None,
        load_balancer: Optional[AbstractLoadBalancer] = None,
        result_cache: Optional[ResultCache] = None,
        recovery_log: Optional[RecoveryLog] = None,
        request_factory: Optional[RequestFactory] = None,
        lazy_transaction_begin: bool = True,
        interceptors: Sequence[InterceptorSpec] = (),
        routing: Optional[RoutingConfig] = None,
    ):
        from repro.core.loadbalancer import RAIDb1LoadBalancer  # avoid import cycle

        self._backends = list(backends)
        self._backends_by_name: Dict[str, DatabaseBackend] = {
            backend.name: backend for backend in self._backends
        }
        #: cached list of enabled backends, dropped whenever a backend is
        #: added/removed or changes state (see _on_backend_state_change); the
        #: version counter prevents a concurrent state change during snapshot
        #: computation from being masked by the stale result being published
        self._enabled_snapshot: Optional[List[DatabaseBackend]] = None
        self._backends_version = 0
        self._snapshot_lock = threading.Lock()
        for backend in self._backends:
            backend.add_state_listener(self._on_backend_state_change)
        self.scheduler = scheduler or OptimisticTransactionLevelScheduler()
        self.load_balancer = load_balancer or RAIDb1LoadBalancer()
        self.result_cache = result_cache
        self.recovery_log = recovery_log
        self.request_factory = request_factory or RequestFactory()
        self.lazy_transaction_begin = lazy_transaction_begin
        self._transactions: Dict[int, TransactionContext] = {}
        self._transactions_lock = threading.RLock()
        self._transaction_ids = itertools.count(1)
        self.load_balancer.on_backend_failure = self._handle_backend_failure
        self.load_balancer.on_backend_read_failure = self._handle_backend_read_failure
        #: the query planner turning each read/write into an explicit
        #: RoutePlan before load balancing (the pipeline's ``plan`` stage)
        self.planner = QueryPlanner(self, routing or RoutingConfig())
        self.scatter_executor = ScatterGatherExecutor(self)
        self.load_balancer.cost_estimator = self.planner.cost_estimator
        self.load_balancer.on_placement_change = self.planner.invalidate
        #: optional listener invoked with the disabled backend (used by the
        #: virtual database to log and by tests to observe failover)
        self.on_backend_disabled: Optional[Callable[[DatabaseBackend, Exception], None]] = None
        #: optional :class:`repro.core.failover.FailureDetector` owning the
        #: disable decision; installed by the virtual database.  Without one
        #: the manager falls back to the paper's bare rule: any write-path
        #: failure disables the backend immediately.
        self.failure_detector = None
        # statistics
        self.transactions_started = 0
        self.transactions_committed = 0
        self.transactions_aborted = 0
        #: transactions re-run by run_in_transaction after an MVCC conflict
        self.serialization_retries = 0
        self.batches_executed = 0
        self.statements_batched = 0
        #: bucket label -> number of batches whose size fell in the bucket
        self._batch_histogram: Dict[str, int] = {}
        self._stats_lock = threading.Lock()
        # the execution pipeline; the metrics interceptor is always installed
        # (it carries the per-request-type counters behind requests_executed)
        built = build_interceptors(interceptors)
        self.metrics = next(
            (i for i in built if isinstance(i, MetricsInterceptor)), None
        )
        if self.metrics is None:
            self.metrics = MetricsInterceptor()
        else:
            built.remove(self.metrics)
        # metrics always sits first so its after hook runs for every request,
        # including those rejected by interceptors further down the list
        built.insert(0, self.metrics)
        self.pipeline = Pipeline(self, interceptors=built)

    # -- backend management ----------------------------------------------------------

    @property
    def backends(self) -> List[DatabaseBackend]:
        return list(self._backends)

    def add_backend(self, backend: DatabaseBackend) -> None:
        if backend.name in self._backends_by_name:
            raise CJDBCError(f"backend {backend.name!r} already registered")
        self._backends.append(backend)
        self._backends_by_name[backend.name] = backend
        backend.add_state_listener(self._on_backend_state_change)
        self._drop_enabled_snapshot()

    def remove_backend(self, backend_name: str) -> None:
        removed = self._backends_by_name.pop(backend_name, None)
        if removed is not None:
            removed.remove_state_listener(self._on_backend_state_change)
        self._backends = [b for b in self._backends if b.name != backend_name]
        self._drop_enabled_snapshot()

    def get_backend(self, backend_name: str) -> DatabaseBackend:
        backend = self._backends_by_name.get(backend_name)
        if backend is None:
            raise CJDBCError(f"unknown backend {backend_name!r}")
        return backend

    def _on_backend_state_change(self, backend: DatabaseBackend) -> None:
        self._drop_enabled_snapshot()

    def _drop_enabled_snapshot(self) -> None:
        with self._snapshot_lock:
            self._backends_version += 1
            self._enabled_snapshot = None
        # cached route plans pin candidate sets against a membership version;
        # getattr guards the state-listener path during construction
        planner = getattr(self, "planner", None)
        if planner is not None:
            planner.invalidate()

    def enabled_backends(self) -> List[DatabaseBackend]:
        with self._snapshot_lock:
            version = self._backends_version
            snapshot = self._enabled_snapshot
        if snapshot is None:
            snapshot = [backend for backend in self._backends if backend.is_enabled]
            with self._snapshot_lock:
                # publish only if no membership/state change raced the filter
                if self._backends_version == version:
                    self._enabled_snapshot = snapshot
        # callers get a copy so the cached snapshot cannot be mutated
        return list(snapshot)

    def _handle_backend_failure(self, backend: DatabaseBackend, exc: Exception) -> None:
        """Disable a backend that failed a write/commit/abort (paper §2.4.1)."""
        detector = self.failure_detector
        if detector is not None:
            # the detector inserts the failover marker, disables, notifies
            # on_backend_disabled and kicks off resynchronization
            detector.record_write_failure(backend, exc)
            return
        backend.disable()
        if self.on_backend_disabled is not None:
            self.on_backend_disabled(backend, exc)

    def _handle_backend_read_failure(self, backend: DatabaseBackend, exc: Exception) -> None:
        """Count a read failure against the detector's error threshold."""
        detector = self.failure_detector
        if detector is not None:
            detector.record_read_failure(backend, exc)

    # -- statement entry point ----------------------------------------------------------

    def execute(
        self,
        sql: str,
        parameters: Sequence[object] = (),
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> RequestResult:
        """Parse and execute one SQL statement."""
        request = self.request_factory.create_request(
            sql, parameters, login=login, transaction_id=transaction_id
        )
        context = RequestContext(request, manager=self)
        self.pipeline.execute(context)
        return context.result

    def execute_request(self, request: AbstractRequest) -> RequestResult:
        """Run one request through the execution pipeline."""
        context = RequestContext(request, manager=self)
        self.pipeline.execute(context)
        return context.result

    def prepare(self, sql: str) -> PreparedStatementHandle:
        """Parse ``sql`` once and return a reusable statement handle."""
        return PreparedStatementHandle(self, sql, self.request_factory.get_template(sql))

    def explain(self, sql: str, login: str = "") -> RoutePlan:
        """Plan ``sql`` against live placement and costs without executing it.

        Powers the console ``explain`` command and the driver's ``EXPLAIN
        ROUTE`` prefix; always builds a fresh plan (bypassing the template
        plan cache) so the output reflects this instant's estimates.
        """
        request = self.request_factory.create_request(sql, login=login)
        return self.planner.explain(request)

    def execute_batch(
        self,
        sql: str,
        parameter_sets: Sequence[Sequence[object]],
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> RequestResult:
        """Execute one write template with N parameter sets as a single batch.

        The batch traverses the pipeline once: one scheduler ticket, one
        recovery-log group entry, one cache-invalidation pass, and one
        broadcast task per backend executing all N sets on one connection.
        """
        request = self.request_factory.create_batch_request(
            sql, parameter_sets, login=login, transaction_id=transaction_id
        )
        return self.execute_request(request)

    # -- stage callbacks (invoked by the pipeline's load-balance stage) ----------------

    def _execute_write_on_backends(self, context: RequestContext) -> RequestResult:
        request = context.request
        outcome = self.load_balancer.execute_write_request(
            request, self._backends, context.route_plan
        )
        if request.alters_schema:
            for backend in self.enabled_backends():
                if backend.name in outcome.successes:
                    backend.note_ddl(request)
            # the schema just changed under every cached plan
            self.planner.invalidate()
        self._note_transaction_participant(request)
        result = outcome.result
        result.backends_executed = outcome.backends_executed
        context.backends_executed = outcome.backends_executed
        return result

    def _execute_batch_on_backends(self, context: RequestContext) -> RequestResult:
        request: BatchWriteRequest = context.request
        outcome = self.load_balancer.execute_batch_request(
            request, self._backends, context.route_plan
        )
        self._note_transaction_participant(request)
        result = outcome.result
        result.backends_executed = outcome.backends_executed
        context.backends_executed = outcome.backends_executed
        batch_size = request.batch_size
        bucket = _batch_histogram_bucket(batch_size)
        with self._stats_lock:
            self.batches_executed += 1
            self.statements_batched += batch_size
            self._batch_histogram[bucket] = self._batch_histogram.get(bucket, 0) + 1
        return result

    def _execute_begin_on_backends(self, context: RequestContext) -> RequestResult:
        transaction_id = context.transaction_id
        if not self.lazy_transaction_begin:
            self.load_balancer.broadcast_transaction_operation(
                self.enabled_backends(),
                lambda backend: backend.begin_transaction(transaction_id),
            )
        return RequestResult(update_count=0, transaction_id=transaction_id)

    def _execute_commit_on_backends(self, context: RequestContext) -> RequestResult:
        transaction_id = context.request.transaction_id
        participants = self._participants(transaction_id)
        if participants:
            self.load_balancer.broadcast_transaction_operation(
                participants, lambda backend: backend.commit(transaction_id)
            )
        with self._stats_lock:
            self.transactions_committed += 1
        return RequestResult(update_count=0)

    def _execute_rollback_on_backends(self, context: RequestContext) -> RequestResult:
        transaction_id = context.request.transaction_id
        participants = self._participants(transaction_id)
        if participants:
            self.load_balancer.broadcast_transaction_operation(
                participants, lambda backend: backend.rollback(transaction_id)
            )
        with self._stats_lock:
            self.transactions_aborted += 1
        return RequestResult(update_count=0)

    def _note_transaction_participant(self, request: AbstractRequest) -> None:
        if request.transaction_id is None:
            return
        with self._transactions_lock:
            context = self._transactions.get(request.transaction_id)
            if context is None:
                return
            for backend in self._backends:
                if (
                    backend.has_transaction(request.transaction_id)
                    and backend.name not in context.participating_backends
                ):
                    context.participating_backends.append(backend.name)

    # -- transaction demarcation -------------------------------------------------------------

    def begin(self, login: str = "", transaction_id: Optional[int] = None) -> int:
        """Start a transaction and return its identifier.

        With lazy transaction begin (default), no backend work happens here:
        each backend will open its transaction when it executes the first
        statement of this transaction (paper §2.4.4).  When the optimization
        is disabled, the begin is broadcast to every enabled backend
        immediately, as described in §2.4.1.

        ``transaction_id`` may be supplied by a distributed request manager so
        that every controller of a replicated virtual database uses the same
        identifier for a given client transaction (paper §4.1).
        """
        request = BeginRequest(sql="begin", login=login)
        context = RequestContext(request, manager=self)
        context.requested_transaction_id = transaction_id
        self.pipeline.execute(context)
        return context.result.transaction_id

    def commit(self, transaction_id: int, login: str = "") -> None:
        """Commit on every backend that participated in the transaction."""
        request = CommitRequest(sql="commit", login=login, transaction_id=transaction_id)
        self.pipeline.execute(RequestContext(request, manager=self))

    def rollback(self, transaction_id: int, login: str = "") -> None:
        """Abort on every backend that participated in the transaction."""
        request = RollbackRequest(sql="rollback", login=login, transaction_id=transaction_id)
        self.pipeline.execute(RequestContext(request, manager=self))

    def run_in_transaction(
        self,
        operation: Callable[[int], object],
        login: str = "",
        retry_policy=None,
    ):
        """Run ``operation(transaction_id)`` inside a transaction, retrying
        serialization conflicts.

        The MVCC scheduler aborts first-committer-wins losers with
        :class:`~repro.errors.SerializationConflictError` *before* the
        conflicting statement or commit reaches any backend, so the whole
        transaction can safely be rolled back and re-run.  ``retry_policy``
        (a :class:`~repro.core.retry.RetryPolicy`; a default one is used when
        omitted) bounds the attempts and paces them with its backoff/jitter
        schedule.  Conflicts under other schedulers simply never occur, so
        the operation runs exactly once there.
        """
        import time as _time

        from repro.core.retry import RetryPolicy
        from repro.errors import SerializationConflictError

        policy = retry_policy or RetryPolicy()
        rng = policy.rng()
        last_exc: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                _time.sleep(policy.delay(attempt, rng))
                with self._stats_lock:
                    self.serialization_retries += 1
            transaction_id = self.begin(login=login)
            try:
                outcome = operation(transaction_id)
            except SerializationConflictError as exc:
                last_exc = exc
                self._rollback_quietly(transaction_id, login)
                continue
            except BaseException:
                self._rollback_quietly(transaction_id, login)
                raise
            try:
                self.commit(transaction_id, login=login)
            except SerializationConflictError as exc:
                last_exc = exc
                self._rollback_quietly(transaction_id, login)
                continue
            return outcome
        raise last_exc

    def _rollback_quietly(self, transaction_id: int, login: str) -> None:
        try:
            self.rollback(transaction_id, login=login)
        except CJDBCError:
            pass

    def _register_transaction(
        self, login: str, transaction_id: Optional[int] = None
    ) -> int:
        """Allocate (or adopt) a transaction id and register its context."""
        if transaction_id is None:
            transaction_id = next(self._transaction_ids)
        context = TransactionContext(transaction_id=transaction_id, login=login, begun=True)
        with self._transactions_lock:
            self._transactions[transaction_id] = context
        with self._stats_lock:
            self.transactions_started += 1
        return transaction_id

    def _participants(self, transaction_id: int) -> List[DatabaseBackend]:
        return [
            backend
            for backend in self._backends
            if backend.is_enabled and backend.has_transaction(transaction_id)
        ]

    def _pop_transaction(self, transaction_id: int) -> Optional[TransactionContext]:
        with self._transactions_lock:
            return self._transactions.pop(transaction_id, None)

    @property
    def active_transactions(self) -> List[int]:
        with self._transactions_lock:
            return sorted(self._transactions)

    # -- recovery support -------------------------------------------------------------------

    def replay_log_entries(
        self,
        backend: DatabaseBackend,
        entries,
        rollback_unfinished: bool = True,
        open_transactions=None,
    ) -> None:
        """Replay recovery-log entries on one backend (used by recovery).

        Transactions are replayed faithfully: begin/commit/rollback entries
        drive per-transaction connections on the backend; entries belonging
        to transactions that never committed are rolled back at the end.
        ``batch`` group entries replay atomically as one server-side batch
        on the backend (one connection, every parameter set), mirroring how
        they originally executed.

        Phased replay (backend re-integration) passes
        ``rollback_unfinished=False`` together with a shared
        ``open_transactions`` set: transactions still open at the end of one
        phase are left open on the backend (making it a commit/abort
        participant for the client's own demarcation) and the set carries
        them into the next phase so their later entries keep joining them.
        """
        if open_transactions is None:
            open_transactions = set()
        for entry in entries:
            if entry.entry_type == "checkpoint":
                continue
            if entry.entry_type == "batch":
                request = self.request_factory.create_batch_request(
                    entry.sql,
                    entry.parameter_sets,
                    login=entry.login,
                    transaction_id=entry.transaction_id
                    if entry.transaction_id in open_transactions
                    else None,
                )
                backend.execute_batch(request)
                continue
            if entry.entry_type == "begin":
                if entry.transaction_id is not None:
                    backend.begin_transaction(entry.transaction_id)
                    open_transactions.add(entry.transaction_id)
                continue
            if entry.entry_type == "commit":
                if entry.transaction_id is not None:
                    backend.commit(entry.transaction_id)
                    open_transactions.discard(entry.transaction_id)
                continue
            if entry.entry_type == "rollback":
                if entry.transaction_id is not None:
                    backend.rollback(entry.transaction_id)
                    open_transactions.discard(entry.transaction_id)
                continue
            request = self.request_factory.create_request(
                entry.sql,
                entry.parameters,
                login=entry.login,
                transaction_id=entry.transaction_id if entry.transaction_id in open_transactions else None,
            )
            backend.execute_request(request)
        if rollback_unfinished:
            for transaction_id in open_transactions:
                backend.rollback(transaction_id)
            open_transactions.clear()

    # -- statistics ---------------------------------------------------------------------------

    @property
    def requests_executed(self) -> int:
        """Total requests processed by the pipeline (all categories).

        Kept for backward compatibility; the per-category breakdown lives on
        the ``metrics`` interceptor (``statistics()["requests"]``).
        """
        return self.metrics.total_requests

    def batch_statistics(self) -> dict:
        """Server-side batching counters and the batch-size histogram."""
        with self._stats_lock:
            return {
                "batches_executed": self.batches_executed,
                "statements_batched": self.statements_batched,
                "statements_per_batch": dict(self._batch_histogram),
            }

    def statistics(self) -> dict:
        stats = {
            "requests_executed": self.requests_executed,
            "requests": self.metrics.statistics(),
            "pipeline": self.pipeline.statistics(),
            "batches": self.batch_statistics(),
            "transactions_started": self.transactions_started,
            "transactions_committed": self.transactions_committed,
            "transactions_aborted": self.transactions_aborted,
            "serialization_retries": self.serialization_retries,
            "active_transactions": len(self.active_transactions),
            "scheduler": self.scheduler.statistics(),
            "load_balancer": self.load_balancer.statistics(),
            "planner": self.planner.statistics(),
            "scatter_gather": self.scatter_executor.statistics(),
            "backends": [backend.statistics() for backend in self._backends],
        }
        if self.failure_detector is not None:
            stats["failure_detector"] = self.failure_detector.statistics()
        if self.result_cache is not None:
            stats["cache"] = self.result_cache.statistics.as_dict()
        parsing_cache = getattr(self.request_factory, "parsing_cache", None)
        if parsing_cache is not None:
            stats["parsing_cache"] = parsing_cache.as_dict()
        return stats
