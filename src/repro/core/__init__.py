"""C-JDBC middleware core: controller, virtual databases, driver, request manager.

Most applications should use the :mod:`repro.cluster` facade instead of
assembling these components by hand: :func:`repro.load_cluster` boots a
whole deployment from a declarative descriptor and :func:`repro.connect`
reaches it through a ``cjdbc://`` URL.  The programmatic entry points here
remain supported:

* :func:`repro.core.config.build_virtual_database` with a
  :class:`repro.core.config.VirtualDatabaseConfig` to assemble a virtual
  database from backends and policies;
* :class:`repro.core.controller.Controller` to host virtual databases;
* :func:`repro.core.driver.connect` to obtain a DB-API connection to a
  virtual database (with transparent controller failover); it also accepts
  a ``cjdbc://`` URL.
"""

from repro.core.authentication import AuthenticationManager
from repro.core.backend import BackendState, DatabaseBackend
from repro.core.config import (
    BackendConfig,
    VirtualDatabaseConfig,
    build_virtual_database,
)
from repro.core.controller import Controller
from repro.core.driver import PreparedStatement, connect
from repro.core.failover import BackendResynchronizer, FailureDetector
from repro.core.faults import FaultInjector, FaultRule
from repro.core.pipeline import (
    Interceptor,
    MetricsInterceptor,
    Pipeline,
    RateLimitInterceptor,
    RequestContext,
    SlowQueryLogInterceptor,
    Stage,
    TracingInterceptor,
    build_interceptor,
    build_interceptors,
)
from repro.core.request import BatchWriteRequest, RequestResult
from repro.core.request_manager import PreparedStatementHandle, RequestManager
from repro.core.requestparser import ParsingCache, RequestFactory
from repro.core.virtualdb import VirtualDatabase

__all__ = [
    "AuthenticationManager",
    "BackendConfig",
    "BackendResynchronizer",
    "BackendState",
    "BatchWriteRequest",
    "Controller",
    "DatabaseBackend",
    "FailureDetector",
    "FaultInjector",
    "FaultRule",
    "Interceptor",
    "MetricsInterceptor",
    "ParsingCache",
    "Pipeline",
    "PreparedStatement",
    "PreparedStatementHandle",
    "RateLimitInterceptor",
    "RequestContext",
    "RequestFactory",
    "RequestManager",
    "RequestResult",
    "SlowQueryLogInterceptor",
    "Stage",
    "TracingInterceptor",
    "VirtualDatabase",
    "VirtualDatabaseConfig",
    "build_interceptor",
    "build_interceptors",
    "build_virtual_database",
    "connect",
]
