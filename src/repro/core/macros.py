"""Macro rewriting for non-deterministic SQL functions.

Paper §2.4.1: "SQL queries containing macros such as RAND() or NOW() are
rewritten on-the-fly with a value computed by the scheduler so that each
backend stores exactly the same data."

The rewriter works on the SQL text using the engine's lexer so it does not
need a full parse (the statement may target any backend dialect).  Every
occurrence of a non-deterministic function call with an empty argument list
is replaced by a literal computed once by the controller.
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Callable, Dict, Optional, Tuple

from repro.sql.lexer import Token, TokenType, tokenize

#: macro name -> callable computing the literal SQL text to substitute
_MACRO_GENERATORS: Dict[str, Callable[[], str]] = {
    "NOW": lambda: "'" + _dt.datetime.now().isoformat(sep=" ", timespec="seconds") + "'",
    "CURRENT_TIMESTAMP": lambda: "'" + _dt.datetime.now().isoformat(sep=" ", timespec="seconds") + "'",
    "SYSDATE": lambda: "'" + _dt.datetime.now().isoformat(sep=" ", timespec="seconds") + "'",
    "CURRENT_DATE": lambda: "'" + _dt.date.today().isoformat() + "'",
    "CURDATE": lambda: "'" + _dt.date.today().isoformat() + "'",
    "RAND": lambda: repr(random.random()),
    "RANDOM": lambda: repr(random.random()),
}


def contains_macro(sql: str) -> bool:
    """Cheap check used to skip tokenization on the common macro-free path."""
    upper = sql.upper()
    return any(name + "(" in upper.replace(" (", "(") for name in _MACRO_GENERATORS)


def rewrite_macros(sql: str, clock: Optional[Callable[[], _dt.datetime]] = None) -> Tuple[str, bool]:
    """Replace non-deterministic macro calls with literals.

    Returns ``(rewritten_sql, changed)``.  ``clock`` can be injected by tests
    and by the simulator to make NOW() deterministic.
    """
    if not contains_macro(sql):
        return sql, False
    tokens = tokenize(sql)
    replacements = []  # (start_position_of_name_token, end_position_after_parens, literal)
    index = 0
    while index < len(tokens) - 1:
        token = tokens[index]
        name = token.value.upper()
        if (
            token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
            and name in _MACRO_GENERATORS
            and tokens[index + 1].matches(TokenType.PUNCTUATION, "(")
            and index + 2 < len(tokens)
            and tokens[index + 2].matches(TokenType.PUNCTUATION, ")")
        ):
            if clock is not None and name in (
                "NOW",
                "CURRENT_TIMESTAMP",
                "SYSDATE",
            ):
                literal = "'" + clock().isoformat(sep=" ", timespec="seconds") + "'"
            else:
                literal = _MACRO_GENERATORS[name]()
            start = _token_start(sql, token)
            end = tokens[index + 2].position + 1
            replacements.append((start, end, literal))
            index += 3
            continue
        index += 1
    if not replacements:
        return sql, False
    rewritten = []
    cursor = 0
    for start, end, literal in replacements:
        rewritten.append(sql[cursor:start])
        rewritten.append(literal)
        cursor = end
    rewritten.append(sql[cursor:])
    return "".join(rewritten), True


def _token_start(sql: str, token: Token) -> int:
    """Recover the starting offset of a word token.

    The lexer records the position *after* reading word tokens, so walk back
    over the identifier characters.
    """
    end = token.position
    start = end - len(token.value)
    # Tokens store the position after the word for identifiers/keywords and
    # the starting index for operators; be defensive and search nearby.
    if sql[start:end].upper() == token.value.upper():
        return start
    lowered = sql.upper()
    found = lowered.rfind(token.value.upper(), 0, end + len(token.value))
    return found if found != -1 else max(0, start)
