"""Configuration layer: build virtual databases from declarative descriptions.

The real C-JDBC is configured through an XML file per virtual database.  The
equivalent here is a plain dictionary (or keyword arguments) consumed by
:class:`VirtualDatabaseConfig` / :func:`build_virtual_database`, covering the
same knobs: replication level (RAIDb-0/1/2 or single), load-balancing
policy, wait-for-completion (early response), scheduler, result cache and
its granularity and relaxation rules, recovery log and authentication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.authentication import AuthenticationManager
from repro.core.backend import DatabaseBackend
from repro.core.cache import RelaxationRule, ResultCache
from repro.core.cache.granularity import granularity_from_name
from repro.core.connection_manager import (
    FailFastPoolConnectionManager,
    RandomWaitPoolConnectionManager,
    SimpleConnectionManager,
    VariablePoolConnectionManager,
)
from repro.core.faults import build_fault_injector
from repro.core.loadbalancer import (
    RAIDb0LoadBalancer,
    RAIDb1LoadBalancer,
    RAIDb2LoadBalancer,
    SingleDBLoadBalancer,
    WaitForCompletion,
    policy_from_name,
)
from repro.core.recovery.recovery_log import FileRecoveryLog, MemoryRecoveryLog
from repro.core.request_manager import RequestManager
from repro.core.requestparser import RequestFactory
from repro.core.scheduler import build_scheduler
from repro.core.virtualdb import VirtualDatabase
from repro.errors import ConfigurationError
from repro.planner import ROUTING_POLICIES, RoutingConfig, RoutingWeights
from repro.sql import dbapi
from repro.sql.engine import DatabaseEngine
from repro.sql.metadata import DatabaseMetaData


@dataclass
class BackendConfig:
    """Description of one backend attached to a virtual database."""

    name: str
    #: an engine to create a local backend for, or None when a custom
    #: connection factory is supplied
    engine: Optional[DatabaseEngine] = None
    connection_factory: Optional[Callable[[], object]] = None
    metadata_factory: Optional[Callable[[], object]] = None
    weight: int = 1
    connection_manager: str = "variable"
    pool_size: int = 10
    static_schema: Optional[Sequence[str]] = None
    #: validated ``faults:`` document ({"seed": ..., "rules": [...]}) arming
    #: a deterministic fault injector on the backend at build time
    faults: Optional[Dict[str, Any]] = None


@dataclass
class VirtualDatabaseConfig:
    """Declarative description of a virtual database."""

    name: str
    backends: List[BackendConfig] = field(default_factory=list)
    replication: str = "raidb1"            # single | raidb0 | raidb1 | raidb2
    load_balancing_policy: str = "lprf"    # rr | wrr | lprf
    wait_for_completion: str = "all"       # first | majority | all
    #: scheduler name (passthrough | optimistic | pessimistic | table_lock |
    #: mvcc) or an options mapping ({"name": "table_lock", "lock_timeout": 2})
    scheduler: Any = "optimistic"
    lazy_transaction_begin: bool = True
    cache_enabled: bool = False
    cache_granularity: str = "table"       # database | table | column
    cache_max_entries: int = 10000
    cache_relaxation_rules: List[RelaxationRule] = field(default_factory=list)
    #: entries in the SQL parsing cache (0 disables it)
    parsing_cache_size: int = 1024
    #: pipeline interceptors: built-in names ("tracing"), option mappings
    #: ({"name": "rate_limit", "max_requests": 100}) or Interceptor instances
    interceptors: List[Any] = field(default_factory=list)
    recovery_log: str = "memory"           # none | memory | file:<path>
    users: Dict[str, str] = field(default_factory=dict)
    transparent_authentication: bool = True
    group_name: Optional[str] = None
    #: table -> backend names, for RAIDb-2 DDL placement
    replication_map: Dict[str, List[str]] = field(default_factory=dict)
    #: table -> backend name, for RAIDb-0 DDL placement
    partition_map: Dict[str, str] = field(default_factory=dict)
    #: reads failing this many times on one backend disable it
    read_error_threshold: int = 3
    #: automatically re-integrate disabled backends from the recovery log
    auto_resync: bool = False
    #: query routing: "policy" leaves read selection to the configured read
    #: policy, "cost" routes each read to the cheapest capable backend
    routing_policy: str = "policy"
    #: allow multi-table reads over disjoint RAIDb-2 partitions to scatter
    #: per-table fragments and merge them on the controller
    routing_scatter_gather: bool = False
    #: cost-formula weight overrides: service_time, pending, pool
    routing_weights: Dict[str, float] = field(default_factory=dict)


def build_virtual_database(config: VirtualDatabaseConfig) -> VirtualDatabase:
    """Instantiate a virtual database (and all its components) from a config."""
    backends = []
    engines: Dict[str, DatabaseEngine] = {}
    for backend_config in config.backends:
        backend = _build_backend(backend_config)
        backends.append(backend)
        if backend_config.engine is not None:
            engines[backend_config.name] = backend_config.engine

    scheduler = _build_scheduler(config.scheduler)
    load_balancer = _build_load_balancer(config)
    result_cache = _build_cache(config)
    recovery_log = _build_recovery_log(config.recovery_log)

    if config.parsing_cache_size < 0:
        raise ConfigurationError(
            f"parsing_cache_size must be >= 0 (0 disables the parsing cache),"
            f" got {config.parsing_cache_size}"
        )
    request_manager = RequestManager(
        backends=[],
        scheduler=scheduler,
        load_balancer=load_balancer,
        result_cache=result_cache,
        recovery_log=recovery_log,
        request_factory=RequestFactory(parsing_cache_size=config.parsing_cache_size),
        lazy_transaction_begin=config.lazy_transaction_begin,
        routing=_build_routing(config),
    )
    authentication = AuthenticationManager(transparent=config.transparent_authentication)
    for login, password in config.users.items():
        authentication.add_virtual_user(login, password)

    virtual_database = VirtualDatabase(
        name=config.name,
        request_manager=request_manager,
        authentication_manager=authentication,
        group_name=config.group_name,
        interceptors=config.interceptors,
        read_error_threshold=config.read_error_threshold,
        auto_resync=config.auto_resync,
    )
    # Attach backends through the public assembly path so engine registration
    # (checkpoint/restore support) is not duplicated here.
    for backend in backends:
        virtual_database.add_backend(backend, engine=engines.get(backend.name), enable=True)
    return virtual_database


# ---------------------------------------------------------------------------
# component builders
# ---------------------------------------------------------------------------


def _build_backend(config: BackendConfig) -> DatabaseBackend:
    if config.connection_factory is not None:
        factory = config.connection_factory
        metadata_factory = config.metadata_factory
    elif config.engine is not None:
        engine = config.engine
        factory = lambda: dbapi.connect(engine)  # noqa: E731 - closure over engine
        metadata_factory = lambda: DatabaseMetaData(engine)  # noqa: E731
    else:
        raise ConfigurationError(
            f"backend {config.name!r} needs either an engine or a connection factory"
        )
    manager_kind = config.connection_manager.lower()
    if manager_kind == "simple":
        manager = SimpleConnectionManager(factory)
    elif manager_kind in ("failfast", "fail_fast"):
        manager = FailFastPoolConnectionManager(factory, pool_size=config.pool_size)
    elif manager_kind in ("randomwait", "random_wait"):
        manager = RandomWaitPoolConnectionManager(factory, pool_size=config.pool_size)
    elif manager_kind == "variable":
        manager = VariablePoolConnectionManager(factory, initial_pool_size=config.pool_size)
    else:
        raise ConfigurationError(f"unknown connection manager {config.connection_manager!r}")
    backend = DatabaseBackend(
        name=config.name,
        connection_factory=factory,
        connection_manager=manager,
        weight=config.weight,
        static_schema=config.static_schema,
        metadata_factory=metadata_factory,
    )
    if config.faults:
        backend.set_fault_injector(build_fault_injector(config.faults))
    return backend


def _build_routing(config: VirtualDatabaseConfig) -> RoutingConfig:
    policy = config.routing_policy.lower()
    if policy not in ROUTING_POLICIES:
        raise ConfigurationError(
            f"unknown routing policy {config.routing_policy!r}"
            f" (expected one of: {', '.join(ROUTING_POLICIES)})"
        )
    weights = dict(config.routing_weights or {})
    unknown = set(weights) - {"service_time", "pending", "pool"}
    if unknown:
        raise ConfigurationError(
            f"unknown routing weight(s) {sorted(unknown)!r}"
            f" (expected one of: pending, pool, service_time)"
        )
    defaults = RoutingWeights()
    return RoutingConfig(
        policy=policy,
        scatter_gather=config.routing_scatter_gather,
        weights=RoutingWeights(
            pending=float(weights.get("pending", defaults.pending)),
            pool=float(weights.get("pool", defaults.pool)),
            service_time=float(weights.get("service_time", defaults.service_time)),
        ),
    )


def _build_scheduler(spec):
    return build_scheduler(spec)


def _build_load_balancer(config: VirtualDatabaseConfig):
    policy = policy_from_name(config.load_balancing_policy)
    wait = WaitForCompletion(config.wait_for_completion.lower())
    replication = config.replication.lower()
    if replication in ("single", "singledb"):
        return SingleDBLoadBalancer(read_policy=policy, wait_for_completion=wait)
    if replication in ("raidb0", "raidb-0", "partition"):
        return RAIDb0LoadBalancer(
            read_policy=policy,
            wait_for_completion=wait,
            partition_map=config.partition_map,
        )
    if replication in ("raidb1", "raidb-1", "full"):
        return RAIDb1LoadBalancer(read_policy=policy, wait_for_completion=wait)
    if replication in ("raidb2", "raidb-2", "partial"):
        return RAIDb2LoadBalancer(
            read_policy=policy,
            wait_for_completion=wait,
            replication_map={t: set(b) for t, b in config.replication_map.items()},
        )
    raise ConfigurationError(f"unknown replication level {config.replication!r}")


def _build_cache(config: VirtualDatabaseConfig) -> Optional[ResultCache]:
    if not config.cache_enabled:
        return None
    return ResultCache(
        granularity=granularity_from_name(config.cache_granularity),
        max_entries=config.cache_max_entries,
        relaxation_rules=config.cache_relaxation_rules,
    )


def _build_recovery_log(spec: str):
    lowered = spec.lower()
    if lowered == "none":
        return None
    if lowered == "memory":
        return MemoryRecoveryLog()
    if lowered.startswith("file:"):
        return FileRecoveryLog(spec[len("file:") :])
    raise ConfigurationError(f"unknown recovery log specification {spec!r}")
