"""Client retry/backoff policy for controller failover.

The C-JDBC driver transparently fails over to another controller when the
one it is talking to dies.  A :class:`RetryPolicy` makes that behaviour
tunable per connection: how many attempts, how long to back off between
them (exponential with jitter, capped), and an overall per-operation
timeout after which the driver gives up even if attempts remain.

Two error families are retryable: *controller* failures
(:class:`repro.errors.ControllerError` — the controller is unreachable,
dead, or cannot serve the database) and *serialization conflicts*
(:class:`repro.errors.SerializationConflictError` — the MVCC scheduler
aborted the transaction before the conflicting statement reached any
backend, so re-running it is safe).  Other database errors (bad SQL,
constraint violations) and protocol errors are not: retrying them would at
best repeat the failure and at worst double-apply a write.

Policies are plain frozen dataclasses so they can live in cluster
descriptors and URL options:

    repro://host1:port1,host2:port2/db?retry_attempts=5&retry_backoff=0.1
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import CJDBCError, ControllerError, SerializationConflictError

#: URL option / descriptor keys understood by :meth:`RetryPolicy.from_options`
_OPTION_KEYS = (
    "retry_attempts",
    "retry_backoff",
    "retry_backoff_multiplier",
    "retry_backoff_max",
    "retry_jitter",
    "retry_timeout",
    "retry_seed",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a client connection retries failed-over operations."""

    #: total attempts per operation (first try included)
    max_attempts: int = 3
    #: base delay before the second attempt, in seconds
    backoff: float = 0.05
    #: growth factor applied per attempt (exponential backoff)
    backoff_multiplier: float = 2.0
    #: cap on any single delay, in seconds
    backoff_max: float = 2.0
    #: fraction of the delay randomized away (0.5 -> +/-50%)
    jitter: float = 0.5
    #: overall wall-clock budget per operation, in seconds (None = no cap)
    operation_timeout: Optional[float] = None
    #: seed for the jitter RNG (deterministic retries in tests/chaos)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CJDBCError(f"retry max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0 or self.backoff_max < 0:
            raise CJDBCError("retry backoff delays cannot be negative")
        if not 0 <= self.jitter <= 1:
            raise CJDBCError(f"retry jitter must be within [0, 1], got {self.jitter}")
        if self.operation_timeout is not None and self.operation_timeout <= 0:
            raise CJDBCError("retry operation_timeout must be positive")

    # -- behaviour ------------------------------------------------------------------

    @staticmethod
    def is_retryable(exc: BaseException) -> bool:
        """Controller failures and serialization conflicts are safe to retry."""
        return isinstance(exc, (ControllerError, SerializationConflictError))

    def rng(self) -> random.Random:
        """A jitter RNG for one connection's lifetime."""
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before the given attempt (attempt 1 is the first retry)."""
        if attempt < 1 or self.backoff == 0:
            return 0.0
        base = min(
            self.backoff * (self.backoff_multiplier ** (attempt - 1)),
            self.backoff_max,
        )
        if not self.jitter:
            return base
        spread = (rng or self.rng()).uniform(-self.jitter, self.jitter)
        return max(0.0, base * (1.0 + spread))

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_options(cls, options: Mapping[str, Any]) -> Optional["RetryPolicy"]:
        """Build a policy from URL options / a descriptor ``retry:`` section.

        Returns None when no ``retry_*`` key is present, so connections
        without retry options keep the legacy single-pass failover.
        """
        if not any(key in options for key in _OPTION_KEYS):
            return None
        try:
            return cls(
                max_attempts=int(options.get("retry_attempts", cls.max_attempts)),
                backoff=float(options.get("retry_backoff", cls.backoff)),
                backoff_multiplier=float(
                    options.get("retry_backoff_multiplier", cls.backoff_multiplier)
                ),
                backoff_max=float(options.get("retry_backoff_max", cls.backoff_max)),
                jitter=float(options.get("retry_jitter", cls.jitter)),
                operation_timeout=(
                    float(options["retry_timeout"])
                    if options.get("retry_timeout") not in (None, "")
                    else None
                ),
                seed=(
                    int(options["retry_seed"])
                    if options.get("retry_seed") not in (None, "")
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise CJDBCError(f"invalid retry option: {exc}") from exc


__all__ = ["RetryPolicy"]
