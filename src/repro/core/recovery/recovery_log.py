"""Recovery log (paper §3.2).

"C-JDBC implements a recovery log that records a log entry for each begin,
commit, abort and update statement.  A log entry consists of the user
identification, the transaction identifier, and the SQL statement.  The log
can be stored in a flat file, but also in a database using JDBC."

Three storage flavours are provided:

* :class:`MemoryRecoveryLog` — in-process list, used by most tests;
* :class:`FileRecoveryLog` — JSON-lines flat file;
* :class:`DatabaseRecoveryLog` — stores entries through any DB-API
  connection factory.  Handing it a connection factory that goes through the
  C-JDBC driver to a fault-tolerant virtual database reproduces the
  "fault-tolerant recovery log" configuration of Figure 2.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.core.request import freeze_parameter_sets


def _freeze_parameters(entry_type: str, parameters) -> tuple:
    """Normalize deserialized parameters to the in-memory representation.

    ``batch`` entries store a tuple of parameter *sets*; JSON round-trips
    turn the inner tuples into lists, so they are re-frozen here to keep
    entry equality and replay behaviour independent of the storage flavour.
    """
    if entry_type == "batch":
        return freeze_parameter_sets(parameters)
    return tuple(parameters)


@dataclass
class LogEntry:
    """One recovery log record."""

    log_id: int
    login: str
    transaction_id: Optional[int]
    sql: str
    parameters: tuple = ()
    #: "begin" | "commit" | "rollback" | "write" | "batch" | "checkpoint"
    entry_type: str = "write"
    #: checkpoint name for checkpoint markers
    checkpoint_name: Optional[str] = None

    @property
    def parameter_sets(self) -> tuple:
        """The parameter sets of a ``batch`` group entry."""
        if self.entry_type != "batch":
            raise ValueError(
                f"log entry {self.log_id} is a {self.entry_type!r} entry,"
                f" not a batch group"
            )
        return freeze_parameter_sets(self.parameters)

    def to_json(self) -> str:
        payload = asdict(self)
        payload["parameters"] = list(self.parameters)
        return json.dumps(payload, default=str)

    @classmethod
    def from_json(cls, text: str) -> "LogEntry":
        payload = json.loads(text)
        entry_type = payload.get("entry_type", "write")
        payload["parameters"] = _freeze_parameters(
            entry_type, payload.get("parameters", ())
        )
        return cls(**payload)


class RecoveryLog:
    """Interface + shared id allocation for recovery logs."""

    def __init__(self):
        self._id_lock = threading.Lock()
        self._next_id = 1

    # -- recording -------------------------------------------------------------

    def _allocate_id(self) -> int:
        with self._id_lock:
            log_id = self._next_id
            self._next_id += 1
            return log_id

    def log_request(
        self,
        sql: str,
        parameters: tuple = (),
        login: str = "",
        transaction_id: Optional[int] = None,
        entry_type: str = "write",
    ) -> LogEntry:
        entry = LogEntry(
            log_id=self._allocate_id(),
            login=login,
            transaction_id=transaction_id,
            sql=sql,
            parameters=tuple(parameters),
            entry_type=entry_type,
        )
        self._append(entry)
        return entry

    def log_batch(
        self,
        sql: str,
        parameter_sets,
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> LogEntry:
        """Record one server-side batch as a single replayable group entry.

        The whole batch (template + every parameter set) is one log record,
        so recovery replays it atomically as one backend batch instead of N
        independent statements.
        """
        return self.log_request(
            sql,
            freeze_parameter_sets(parameter_sets),
            login,
            transaction_id,
            entry_type="batch",
        )

    def log_begin(self, login: str, transaction_id: int) -> LogEntry:
        return self.log_request("begin", (), login, transaction_id, entry_type="begin")

    def log_commit(self, login: str, transaction_id: int) -> LogEntry:
        return self.log_request("commit", (), login, transaction_id, entry_type="commit")

    def log_rollback(self, login: str, transaction_id: int) -> LogEntry:
        return self.log_request("rollback", (), login, transaction_id, entry_type="rollback")

    def insert_checkpoint_marker(self, checkpoint_name: str) -> LogEntry:
        entry = LogEntry(
            log_id=self._allocate_id(),
            login="",
            transaction_id=None,
            sql="",
            entry_type="checkpoint",
            checkpoint_name=checkpoint_name,
        )
        self._append(entry)
        return entry

    # -- reading -----------------------------------------------------------------

    def entries(self) -> List[LogEntry]:
        raise NotImplementedError  # pragma: no cover - interface

    def entries_since_checkpoint(self, checkpoint_name: str) -> List[LogEntry]:
        """All entries recorded after the named checkpoint marker."""
        found = False
        selected: List[LogEntry] = []
        for entry in self.entries():
            if found:
                selected.append(entry)
            elif entry.entry_type == "checkpoint" and entry.checkpoint_name == checkpoint_name:
                found = True
        if not found:
            raise KeyError(f"unknown checkpoint {checkpoint_name!r}")
        return selected

    def entries_after_id(self, log_id: int) -> List[LogEntry]:
        """All entries recorded after the given log id.

        Used by phased backend re-integration: the online replay notes the
        id of the last entry it applied, and the barrier catch-up replays
        only what was appended in the meantime.
        """
        return [entry for entry in self.entries() if entry.log_id > log_id]

    def checkpoint_names(self) -> List[str]:
        return [
            entry.checkpoint_name
            for entry in self.entries()
            if entry.entry_type == "checkpoint" and entry.checkpoint_name
        ]

    def __len__(self) -> int:
        return len(self.entries())

    # -- storage hook -----------------------------------------------------------------

    def _append(self, entry: LogEntry) -> None:
        raise NotImplementedError  # pragma: no cover - interface


class MemoryRecoveryLog(RecoveryLog):
    """Keeps log entries in memory."""

    def __init__(self):
        super().__init__()
        self._entries: List[LogEntry] = []
        self._lock = threading.Lock()

    def _append(self, entry: LogEntry) -> None:
        with self._lock:
            self._entries.append(entry)

    def entries(self) -> List[LogEntry]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class FileRecoveryLog(RecoveryLog):
    """Appends JSON-lines entries to a flat file."""

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._lock = threading.Lock()
        # Resume id allocation after existing entries.
        existing = self.entries()
        if existing:
            self._next_id = max(entry.log_id for entry in existing) + 1

    def _append(self, entry: LogEntry) -> None:
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(entry.to_json() + "\n")

    def entries(self) -> List[LogEntry]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return [LogEntry.from_json(line) for line in handle if line.strip()]
        except FileNotFoundError:
            return []


class DatabaseRecoveryLog(RecoveryLog):
    """Stores entries in a database reached through a DB-API connection factory.

    The factory may produce connections to a plain engine or to a C-JDBC
    virtual database (through :mod:`repro.core.driver`), which is how the
    paper builds a fault-tolerant recovery log (Figure 2).
    """

    TABLE = "recovery_log"

    def __init__(self, connection_factory: Callable[[], object]):
        super().__init__()
        self._factory = connection_factory
        self._lock = threading.Lock()
        self._ensure_table()
        existing = self.entries()
        if existing:
            self._next_id = max(entry.log_id for entry in existing) + 1

    def _ensure_table(self) -> None:
        connection = self._factory()
        try:
            cursor = connection.cursor()
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {self.TABLE} ("
                " log_id INT PRIMARY KEY,"
                " login VARCHAR(64),"
                " transaction_id BIGINT,"
                " sql_text TEXT,"
                " parameters TEXT,"
                " entry_type VARCHAR(16),"
                " checkpoint_name VARCHAR(128))"
            )
            connection.commit()
        finally:
            connection.close()

    def _append(self, entry: LogEntry) -> None:
        with self._lock:
            connection = self._factory()
            try:
                cursor = connection.cursor()
                cursor.execute(
                    f"INSERT INTO {self.TABLE} (log_id, login, transaction_id, sql_text,"
                    " parameters, entry_type, checkpoint_name) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        entry.log_id,
                        entry.login,
                        entry.transaction_id,
                        entry.sql,
                        json.dumps(list(entry.parameters), default=str),
                        entry.entry_type,
                        entry.checkpoint_name,
                    ),
                )
                connection.commit()
            finally:
                connection.close()

    def entries(self) -> List[LogEntry]:
        connection = self._factory()
        try:
            cursor = connection.cursor()
            cursor.execute(
                f"SELECT log_id, login, transaction_id, sql_text, parameters,"
                f" entry_type, checkpoint_name FROM {self.TABLE} ORDER BY log_id"
            )
            rows = cursor.fetchall()
        finally:
            connection.close()
        entries = []
        for row in rows:
            entry_type = row[5] or "write"
            entries.append(
                LogEntry(
                    log_id=row[0],
                    login=row[1] or "",
                    transaction_id=row[2],
                    sql=row[3] or "",
                    parameters=_freeze_parameters(
                        entry_type, json.loads(row[4] or "[]")
                    ),
                    entry_type=entry_type,
                    checkpoint_name=row[6],
                )
            )
        return entries
