"""Octopus-like ETL: portable database dump and restore (paper §3.1).

"C-JDBC uses an ETL tool called Octopus to copy data to or from databases.
The database (including data and metadata) is stored in a portable format.
Octopus re-creates the tables and the indexes using the database-specific
types and syntax."

Our :class:`Octopus` works against any DB-API connection (native engine or a
connection obtained through the C-JDBC driver), reads the schema through the
metadata interface when available, and produces a :class:`PortableDump` that
can be serialized to JSON and restored on a different backend.
"""

from __future__ import annotations

import datetime as _dt
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sql.engine import DatabaseEngine
from repro.sql.metadata import DatabaseMetaData
from repro.sql.schema import TableSchema


@dataclass
class PortableDump:
    """A database snapshot in a backend-independent format."""

    name: str
    tables: List[Dict[str, Any]] = field(default_factory=list)
    #: rows per table, keyed by table name
    rows: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    created_at: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "created_at": self.created_at,
                "tables": self.tables,
                "rows": self.rows,
            },
            default=_json_default,
        )

    @classmethod
    def from_json(cls, text: str) -> "PortableDump":
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            tables=payload["tables"],
            rows=payload["rows"],
            created_at=payload.get("created_at", ""),
        )

    def row_count(self) -> int:
        return sum(len(rows) for rows in self.rows.values())


def _json_default(value: Any) -> Any:
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    return str(value)


class Octopus:
    """Dump / restore engine contents in a portable format."""

    # -- dumping --------------------------------------------------------------------

    def dump_engine(self, engine: DatabaseEngine, dump_name: str = "") -> PortableDump:
        """Snapshot every table of ``engine`` (schema + rows)."""
        metadata = DatabaseMetaData(engine)
        dump = PortableDump(
            name=dump_name or engine.name,
            created_at=_dt.datetime.now().isoformat(timespec="seconds"),
        )
        for table_name in metadata.get_table_names():
            schema = engine.table_schema(table_name)
            dump.tables.append(schema.to_portable())
            dump.rows[schema.name] = engine.dump_table_rows(table_name)
        return dump

    def dump_to_file(self, engine: DatabaseEngine, path: str, dump_name: str = "") -> PortableDump:
        dump = self.dump_engine(engine, dump_name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dump.to_json())
        return dump

    # -- restoring --------------------------------------------------------------------

    def restore_engine(self, dump: PortableDump, engine: DatabaseEngine, truncate: bool = True) -> int:
        """Re-create tables and reload rows into ``engine``.

        Returns the number of rows restored.  Existing tables with the same
        name are dropped first when ``truncate`` is True (the checkpointing
        service restores into freshly wiped backends).
        """
        restored = 0
        for table_data in dump.tables:
            schema = TableSchema.from_portable(table_data)
            if engine.catalog.has_table(schema.name):
                if truncate:
                    engine.catalog.drop_table(schema.name)
                else:
                    continue
            engine.catalog.create_table(schema)
            table = engine.catalog.get_table(schema.name)
            for row in dump.rows.get(schema.name, []):
                coerced = {
                    name: schema.column(name).coerce(value) if schema.has_column(name) else value
                    for name, value in row.items()
                }
                table.insert_row(coerced)
                restored += 1
            for key_column in schema.primary_key:
                for row in dump.rows.get(schema.name, []):
                    table.note_explicit_key(key_column, row.get(key_column))
        return restored

    def restore_from_file(self, path: str, engine: DatabaseEngine, truncate: bool = True) -> int:
        with open(path, "r", encoding="utf-8") as handle:
            dump = PortableDump.from_json(handle.read())
        return self.restore_engine(dump, engine, truncate=truncate)

    # -- generic DB-API copy (works through the C-JDBC driver too) ----------------------

    def copy_table(
        self,
        source_connection,
        destination_connection,
        table_name: str,
        columns: List[str],
        create_sql: Optional[str] = None,
        batch_size: int = 500,
    ) -> int:
        """Copy one table between two DB-API connections.

        Used when the source or destination is only reachable through a
        driver (e.g. re-populating a backend attached to another controller).
        """
        if create_sql:
            cursor = destination_connection.cursor()
            cursor.execute(create_sql)
            destination_connection.commit()
        source_cursor = source_connection.cursor()
        column_list = ", ".join(columns)
        source_cursor.execute(f"SELECT {column_list} FROM {table_name}")
        placeholders = ", ".join("?" for _ in columns)
        insert_sql = f"INSERT INTO {table_name} ({column_list}) VALUES ({placeholders})"
        destination_cursor = destination_connection.cursor()
        copied = 0
        while True:
            rows = source_cursor.fetchmany(batch_size)
            if not rows:
                break
            for row in rows:
                destination_cursor.execute(insert_sql, tuple(row))
                copied += 1
            destination_connection.commit()
        return copied
