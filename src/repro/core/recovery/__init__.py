"""Fault tolerance: recovery log, checkpointing and backend recovery (paper §3)."""

from repro.core.recovery.octopus import Octopus, PortableDump
from repro.core.recovery.recovery_log import (
    DatabaseRecoveryLog,
    FileRecoveryLog,
    LogEntry,
    MemoryRecoveryLog,
    RecoveryLog,
)
from repro.core.recovery.checkpoint import CheckpointingService

__all__ = [
    "CheckpointingService",
    "DatabaseRecoveryLog",
    "FileRecoveryLog",
    "LogEntry",
    "MemoryRecoveryLog",
    "Octopus",
    "PortableDump",
    "RecoveryLog",
]
