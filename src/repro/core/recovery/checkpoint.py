"""Checkpointing service and backend recovery (paper §3.1).

The checkpoint procedure follows the paper exactly:

1. insert a checkpoint marker in the recovery log;
2. disable the backend so no updates reach it during the dump (the other
   backends keep serving clients);
3. dump the backend content with the Octopus-like ETL tool;
4. replay from the recovery log the updates that occurred during the dump,
   starting at the checkpoint marker;
5. re-enable the backend.

The same machinery recovers a failed backend or integrates a brand new one:
restore the latest dump, then replay the log from the dump's checkpoint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.backend import DatabaseBackend
from repro.core.recovery.octopus import Octopus, PortableDump
from repro.core.recovery.recovery_log import LogEntry, RecoveryLog
from repro.errors import CheckpointError
from repro.sql.engine import DatabaseEngine


@dataclass
class Checkpoint:
    """A named dump plus its position in the recovery log."""

    name: str
    dump: PortableDump
    backend_name: str

    @property
    def row_count(self) -> int:
        return self.dump.row_count()


class CheckpointingService:
    """Manages checkpoints ("database dumps management" box of Figure 1)."""

    def __init__(self, recovery_log: RecoveryLog, octopus: Optional[Octopus] = None):
        self.recovery_log = recovery_log
        self.octopus = octopus or Octopus()
        self._checkpoints: Dict[str, Checkpoint] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- checkpoint creation ------------------------------------------------------

    def store_checkpoint(self, checkpoint: Checkpoint) -> None:
        with self._lock:
            self._checkpoints[checkpoint.name] = checkpoint

    def get_checkpoint(self, name: str) -> Checkpoint:
        with self._lock:
            try:
                return self._checkpoints[name]
            except KeyError:
                raise CheckpointError(f"unknown checkpoint {name!r}") from None

    def checkpoint_names(self) -> List[str]:
        with self._lock:
            return sorted(self._checkpoints)

    def last_checkpoint(self) -> Optional[Checkpoint]:
        with self._lock:
            if not self._checkpoints:
                return None
            latest = max(self._checkpoints)
            return self._checkpoints[latest]

    def last_checkpoint_for(self, backend_name: str) -> Optional[Checkpoint]:
        """The most recent checkpoint dumped from the named backend.

        Backend re-integration prefers a dump of the backend itself: under
        partial replication (RAIDb-0/2) another backend's dump holds a
        different table subset and must not be restored blindly.
        """
        with self._lock:
            names = sorted(
                name
                for name, checkpoint in self._checkpoints.items()
                if checkpoint.backend_name == backend_name
            )
            return self._checkpoints[names[-1]] if names else None

    def next_checkpoint_name(self, prefix: str = "checkpoint") -> str:
        with self._lock:
            self._counter += 1
            return f"{prefix}-{self._counter:04d}"

    def checkpoint_backend(
        self,
        backend: DatabaseBackend,
        engine: DatabaseEngine,
        name: Optional[str] = None,
        re_enable: bool = True,
        replay: Optional[Callable[[DatabaseBackend, List[LogEntry]], None]] = None,
    ) -> Checkpoint:
        """Take a checkpoint of ``backend`` whose storage is ``engine``.

        ``replay`` is a callback (provided by the virtual database) that
        replays missed log entries on the backend once the dump is finished;
        it is what makes the backend consistent again before re-enabling it.
        """
        checkpoint_name = name or self.next_checkpoint_name()
        # 1. checkpoint marker first, so every later write is replayable
        self.recovery_log.insert_checkpoint_marker(checkpoint_name)
        # 2. disable the backend during the dump
        was_enabled = backend.is_enabled
        if was_enabled:
            backend.disable()
        backend.set_recovering()
        try:
            # 3. dump
            dump = self.octopus.dump_engine(engine, dump_name=checkpoint_name)
            checkpoint = Checkpoint(checkpoint_name, dump, backend.name)
            self.store_checkpoint(checkpoint)
            backend.last_known_checkpoint = checkpoint_name
            # 4. replay what happened during the dump
            if replay is not None:
                missed = self.recovery_log.entries_since_checkpoint(checkpoint_name)
                replay(backend, missed)
        except Exception as exc:
            backend.disable()
            raise CheckpointError(f"checkpoint of {backend.name!r} failed: {exc}") from exc
        # 5. re-enable
        if re_enable:
            backend.enable()
        else:
            backend.disable()
        return checkpoint

    # -- backend recovery -----------------------------------------------------------

    def recover_backend(
        self,
        backend: DatabaseBackend,
        engine: DatabaseEngine,
        checkpoint_name: Optional[str] = None,
        replay: Optional[Callable[[DatabaseBackend, List[LogEntry]], None]] = None,
        enable: bool = True,
    ) -> int:
        """Restore ``backend`` from a checkpoint and replay the log tail.

        Returns the number of log entries replayed.  This is the
        "automatically re-integrate failed backends into a virtual database"
        tool referred to in §2.4.1.
        """
        if checkpoint_name is None:
            last = self.last_checkpoint()
            if last is None:
                raise CheckpointError("no checkpoint available to recover from")
            checkpoint_name = last.name
        checkpoint = self.get_checkpoint(checkpoint_name)
        backend.set_recovering()
        self.octopus.restore_engine(checkpoint.dump, engine, truncate=True)
        missed = self.recovery_log.entries_since_checkpoint(checkpoint_name)
        if replay is not None and missed:
            replay(backend, missed)
        backend.last_known_checkpoint = checkpoint_name
        if enable:
            backend.enable()
        return len(missed)
