"""Automatic failure detection and live backend re-integration.

Paper §2.4.1: "C-JDBC does not use 2-phase commit.  Instead, it provides
tools to automatically re-integrate failed backends into a virtual
database."  This module supplies the two halves of that story:

* :class:`FailureDetector` — the policy deciding *when* a backend leaves the
  cluster.  It is wired into
  :attr:`repro.core.loadbalancer.base.AbstractLoadBalancer.on_backend_failure`
  by the request manager: a backend failing a write/commit/abort is disabled
  immediately (the paper's rule), and a backend exceeding an error threshold
  on reads is disabled too.  Every disable inserts a *failover checkpoint
  marker* in the recovery log (recording the moment the backend left the
  cluster), notifies listeners, and optionally hands the backend to the
  resynchronizer.
* :class:`BackendResynchronizer` — the self-healing worker that brings a
  disabled backend back while the cluster keeps serving traffic: restore
  the last dump checkpoint into the backend's engine (§3.1), replay the
  recovery-log tail *online* (writes keep flowing and keep being logged),
  then catch up the entries that arrived during the online replay under a
  brief scheduler write barrier and re-enable the backend.

Replay across the two phases keeps client transactions faithful: a
transaction begun inside the replay window is left *open* on the recovering
backend (``rollback_unfinished=False``), so the backend becomes a
participant and the client's own later COMMIT/ROLLBACK reaches it through
the normal broadcast path.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.core.backend import BackendState, DatabaseBackend
from repro.errors import CheckpointError, CJDBCError


class FailureDetector:
    """Decides when a failing backend is disabled, and records the evidence.

    One detector serves one virtual database.  Write-path failures (write,
    batch, commit, abort) disable the backend unconditionally — without
    2-phase commit a backend that missed a write is diverged and must not
    serve reads.  Read-path failures are transient until
    ``read_error_threshold`` of them accumulate for the same backend (the
    counter resets when the backend comes back).
    """

    def __init__(
        self,
        request_manager,
        read_error_threshold: int = 3,
        checkpoint_prefix: str = "failover",
        clock: Callable[[], float] = time.monotonic,
    ):
        if read_error_threshold < 1:
            raise CJDBCError("read_error_threshold must be >= 1")
        self.request_manager = request_manager
        self.read_error_threshold = read_error_threshold
        self.checkpoint_prefix = checkpoint_prefix
        self._clock = clock
        self._lock = threading.Lock()
        self._read_errors: Dict[str, int] = {}
        #: backends whose disable is in flight (claimed under the lock, so
        #: concurrent failure reports cannot double-disable one backend)
        self._disabling: set = set()
        self._marker_ids = itertools.count(1)
        #: disable records: backend, kind, error, checkpoint marker, timestamp
        self.events: List[dict] = []
        #: extra listeners called with (backend, exc, event) after a disable
        self._listeners: List[Callable[[DatabaseBackend, Exception, dict], None]] = []
        self.backends_disabled = 0
        self.read_errors_recorded = 0

    # -- wiring ------------------------------------------------------------------------

    def add_listener(
        self, listener: Callable[[DatabaseBackend, Exception, dict], None]
    ) -> None:
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- failure reports (called from load-balancer worker threads) ---------------------

    def record_write_failure(self, backend: DatabaseBackend, exc: Exception) -> bool:
        """A write/batch/commit/abort failed on ``backend``: disable it."""
        return self._disable(backend, exc, kind="write")

    def record_read_failure(self, backend: DatabaseBackend, exc: Exception) -> bool:
        """A read failed; disable the backend once the threshold is crossed."""
        with self._lock:
            self.read_errors_recorded += 1
            count = self._read_errors.get(backend.name, 0) + 1
            self._read_errors[backend.name] = count
        if count >= self.read_error_threshold:
            return self._disable(backend, exc, kind="read")
        return False

    def note_backend_recovered(self, backend: DatabaseBackend) -> None:
        """Reset the read-error budget of a re-integrated backend."""
        with self._lock:
            self._read_errors.pop(backend.name, None)

    def read_error_count(self, backend_name: str) -> int:
        with self._lock:
            return self._read_errors.get(backend_name, 0)

    # -- the disable path ----------------------------------------------------------------

    def _disable(self, backend: DatabaseBackend, exc: Exception, kind: str) -> bool:
        with self._lock:
            if (
                backend.state is not BackendState.ENABLED
                or backend.name in self._disabling
            ):
                return False  # already disabled/recovering: one event per failure
            # claim the disable before releasing the lock: backend.disable()
            # runs outside it, and a racing failure report must not repeat
            # the marker/event/listener sequence in that window
            self._disabling.add(backend.name)
            marker: Optional[str] = None
            log = self.request_manager.recovery_log
            if log is not None:
                marker = (
                    f"{self.checkpoint_prefix}-{backend.name}-{next(self._marker_ids)}"
                )
                log.insert_checkpoint_marker(marker)
            event = {
                "backend": backend.name,
                "kind": kind,
                "error": str(exc),
                "checkpoint": marker,
                "at": self._clock(),
            }
            self.events.append(event)
            self.backends_disabled += 1
            self._read_errors.pop(backend.name, None)
            listeners = list(self._listeners)
        try:
            backend.disable()
            on_disabled = self.request_manager.on_backend_disabled
            if on_disabled is not None:
                on_disabled(backend, exc)
            for listener in listeners:
                listener(backend, exc, event)
        finally:
            with self._lock:
                self._disabling.discard(backend.name)
        return True

    # -- monitoring ----------------------------------------------------------------------

    def statistics(self) -> dict:
        with self._lock:
            return {
                "read_error_threshold": self.read_error_threshold,
                "backends_disabled": self.backends_disabled,
                "read_errors_recorded": self.read_errors_recorded,
                "pending_read_errors": dict(self._read_errors),
                "events": [dict(event) for event in self.events],
            }


class BackendResynchronizer:
    """Background worker re-integrating disabled backends from the recovery log.

    Owned by a :class:`repro.core.virtualdb.VirtualDatabase`.  A resync runs
    in three steps:

    1. **restore** — load the chosen dump checkpoint into the backend's
       registered engine (writes keep flowing to the healthy backends).  If
       no dump exists yet, one is taken from a healthy enabled peer under
       the write barrier of step 3 (bootstrap of a brand-new backend).
    2. **online replay** — replay every log entry recorded since that
       checkpoint, while new writes continue and keep appending to the log.
    3. **barrier catch-up** — acquire the scheduler's write barrier (blocking
       new writes/commits briefly), replay the entries that arrived during
       step 2, re-enable the backend, release the barrier.

    Failures (e.g. the backend is still crashed) are retried up to
    ``max_attempts`` with ``retry_delay`` between attempts; each outcome is
    recorded in :attr:`history`.
    """

    def __init__(
        self,
        virtual_database,
        max_attempts: int = 5,
        retry_delay: float = 0.05,
    ):
        self.virtual_database = virtual_database
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self._lock = threading.Lock()
        self._threads: Dict[str, threading.Thread] = {}
        #: one mutex per backend: a manual resynchronize() racing the
        #: background worker must never truncate-restore the same engine
        #: concurrently
        self._backend_locks: Dict[str, threading.Lock] = {}
        #: one record per finished resync attempt series
        self.history: List[dict] = []
        self.resyncs_started = 0
        self.resyncs_succeeded = 0
        self.resyncs_failed = 0

    # -- public API -------------------------------------------------------------------

    def schedule(self, backend_name: str, delay: float = 0.0) -> threading.Thread:
        """Start (or join onto) a background resync of ``backend_name``."""
        with self._lock:
            existing = self._threads.get(backend_name)
            if existing is not None and existing.is_alive():
                return existing
            thread = threading.Thread(
                target=self._run,
                args=(backend_name, delay),
                name=f"cjdbc-resync-{backend_name}",
                daemon=True,
            )
            self._threads[backend_name] = thread
            self.resyncs_started += 1
        thread.start()
        return thread

    def resynchronize(self, backend_name: str) -> int:
        """Synchronous resync; returns the number of log entries replayed."""
        with self._lock:
            self.resyncs_started += 1
        return self._resync_with_retries(backend_name)

    def wait(self, backend_name: Optional[str] = None, timeout: float = 10.0) -> None:
        """Block until the named (or every) background resync finishes."""
        with self._lock:
            threads = (
                [self._threads[backend_name]]
                if backend_name is not None and backend_name in self._threads
                else list(self._threads.values())
            )
        for thread in threads:
            thread.join(timeout)

    # -- worker ------------------------------------------------------------------------

    def _run(self, backend_name: str, delay: float) -> None:
        if delay > 0:
            time.sleep(delay)
        try:
            self._resync_with_retries(backend_name)
        except Exception:  # noqa: BLE001 - recorded in history, thread must not die loudly
            pass

    def _backend_lock(self, backend_name: str) -> threading.Lock:
        with self._lock:
            lock = self._backend_locks.get(backend_name)
            if lock is None:
                lock = self._backend_locks[backend_name] = threading.Lock()
            return lock

    def _resync_with_retries(self, backend_name: str) -> int:
        with self._backend_lock(backend_name):
            return self._locked_resync_with_retries(backend_name)

    def _locked_resync_with_retries(self, backend_name: str) -> int:
        record = {
            "backend": backend_name,
            "attempts": 0,
            "replayed": 0,
            "ok": False,
            "error": None,
            "started_at": time.monotonic(),
            "finished_at": None,
        }
        error: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            record["attempts"] = attempt + 1
            try:
                record["replayed"] = self._attempt(backend_name)
                record["ok"] = True
                error = None
                break
            except Exception as exc:  # noqa: BLE001 - retried below
                error = exc
                record["error"] = str(exc)
                if attempt + 1 < self.max_attempts:
                    time.sleep(self.retry_delay)
        record["finished_at"] = time.monotonic()
        with self._lock:
            self.history.append(record)
            if record["ok"]:
                self.resyncs_succeeded += 1
            else:
                self.resyncs_failed += 1
        if error is not None:
            # not RECOVERING anymore: the backend is plainly out of service
            # until another resync (or an operator) brings it back
            try:
                self.virtual_database.request_manager.get_backend(backend_name).disable()
            except CJDBCError:
                pass
            raise CheckpointError(
                f"resynchronization of backend {backend_name!r} failed after"
                f" {record['attempts']} attempts: {error}"
            ) from error
        return record["replayed"]

    def _attempt(self, backend_name: str) -> int:
        vdb = self.virtual_database
        manager = vdb.request_manager
        backend = manager.get_backend(backend_name)
        engine = vdb.backend_engine(backend_name)
        if engine is None:
            raise CheckpointError(
                f"backend {backend_name!r} has no registered engine to restore into"
            )
        log = manager.recovery_log
        if log is None:
            raise CheckpointError(
                "resynchronization needs a recovery log (recovery_log: none"
                " disables re-integration)"
            )
        if backend.is_enabled:
            # another resync (or an operator) already brought it back; do
            # not truncate-restore an engine that is serving traffic
            return 0
        service = vdb.checkpointing_service
        backend.set_recovering()
        # drop transactions a previous failed attempt may have left open
        backend.abort_all_transactions()
        checkpoint = self._pick_checkpoint(backend)
        if checkpoint is None:
            # Bootstrap: no dump exists yet.  Take one from a healthy peer
            # under the write barrier so the snapshot is consistent, restore
            # it, and enable — the fresh checkpoint marker means nothing to
            # replay.
            replayed = self._bootstrap_from_peer(backend, engine)
            self._finish(backend)
            return replayed
        # 1. restore the dump (online: healthy backends keep serving)
        service.octopus.restore_engine(checkpoint.dump, engine, truncate=True)
        backend.last_known_checkpoint = checkpoint.name
        # 2. online replay of the tail recorded since the dump's marker
        open_transactions: set = set()
        entries = log.entries_since_checkpoint(checkpoint.name)
        manager.replay_log_entries(
            backend, entries, rollback_unfinished=False, open_transactions=open_transactions
        )
        replayed = len(entries)
        last_seen = entries[-1].log_id if entries else self._marker_id(log, checkpoint.name)
        # 3. barrier catch-up: block new writes, replay what arrived during
        #    step 2, re-enable while still holding the barrier
        with manager.scheduler.write_barrier():
            delta = log.entries_after_id(last_seen)
            manager.replay_log_entries(
                backend,
                delta,
                rollback_unfinished=False,
                open_transactions=open_transactions,
            )
            replayed += len(delta)
            self._finish(backend)
        return replayed

    def _pick_checkpoint(self, backend: DatabaseBackend):
        service = self.virtual_database.checkpointing_service
        if backend.last_known_checkpoint:
            try:
                return service.get_checkpoint(backend.last_known_checkpoint)
            except CheckpointError:
                pass
        own = service.last_checkpoint_for(backend.name)
        if own is not None:
            return own
        # under full replication any backend's dump is the whole database;
        # under partial replication another backend's dump holds a different
        # table subset, so fall through to the peer bootstrap instead
        balancer = self.virtual_database.request_manager.load_balancer
        if balancer.raidb_level == "RAIDb-1":
            return service.last_checkpoint()
        return None

    def _bootstrap_from_peer(self, backend: DatabaseBackend, engine) -> int:
        vdb = self.virtual_database
        manager = vdb.request_manager
        service = vdb.checkpointing_service
        peers = [
            peer
            for peer in manager.enabled_backends()
            if peer.name != backend.name and vdb.backend_engine(peer.name) is not None
        ]
        if not peers:
            raise CheckpointError(
                f"no checkpoint and no healthy peer engine to bootstrap"
                f" backend {backend.name!r} from"
            )
        peer = peers[0]
        with manager.scheduler.write_barrier():
            checkpoint = service.checkpoint_backend(
                peer,
                vdb.backend_engine(peer.name),
                re_enable=True,
                replay=manager.replay_log_entries,
            )
            service.octopus.restore_engine(checkpoint.dump, engine, truncate=True)
            backend.last_known_checkpoint = checkpoint.name
            self._finish(backend)
        return 0

    def _finish(self, backend: DatabaseBackend) -> None:
        backend.enable()
        detector = getattr(self.virtual_database.request_manager, "failure_detector", None)
        if detector is not None:
            detector.note_backend_recovered(backend)

    @staticmethod
    def _marker_id(log, checkpoint_name: str) -> int:
        for entry in log.entries():
            if entry.entry_type == "checkpoint" and entry.checkpoint_name == checkpoint_name:
                return entry.log_id
        raise CheckpointError(f"checkpoint marker {checkpoint_name!r} not in the log")

    # -- monitoring --------------------------------------------------------------------

    def statistics(self) -> dict:
        with self._lock:
            return {
                "max_attempts": self.max_attempts,
                "resyncs_started": self.resyncs_started,
                "resyncs_succeeded": self.resyncs_succeeded,
                "resyncs_failed": self.resyncs_failed,
                "history": [dict(record) for record in self.history],
            }


__all__ = ["BackendResynchronizer", "FailureDetector"]
