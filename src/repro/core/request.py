"""Request objects exchanged between the C-JDBC driver and the controller.

Every SQL statement received by the virtual database is wrapped in a request
object carrying the information the request manager needs to route it: the
SQL text, bound parameters, whether it is a read or a write, the tables it
touches, the transaction it belongs to and the login that issued it
(paper §2.4).  Transaction demarcation (begin/commit/rollback) travels as
dedicated request types because the scheduler must broadcast those to all
backends in the same order as writes.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional, Sequence, Tuple


class RequestType(Enum):
    SELECT = "SELECT"
    WRITE = "WRITE"          # INSERT / UPDATE / DELETE
    DDL = "DDL"              # CREATE / DROP / ALTER
    BEGIN = "BEGIN"
    COMMIT = "COMMIT"
    ROLLBACK = "ROLLBACK"


_request_ids = itertools.count(1)
_request_ids_lock = threading.Lock()


def _next_request_id() -> int:
    with _request_ids_lock:
        return next(_request_ids)


@dataclass
class AbstractRequest:
    """Common state of every request handled by the request manager."""

    sql: str
    parameters: Tuple[Any, ...] = ()
    login: str = ""
    transaction_id: Optional[int] = None
    request_id: int = field(default_factory=_next_request_id)
    #: tables referenced by the request (filled by the request parser)
    tables: Tuple[str, ...] = ()
    #: True when the SQL contained non-deterministic macros that were rewritten
    macros_rewritten: bool = False

    @property
    def is_autocommit(self) -> bool:
        return self.transaction_id is None

    @property
    def request_type(self) -> RequestType:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def is_read_only(self) -> bool:
        return self.request_type is RequestType.SELECT

    @property
    def alters_database(self) -> bool:
        return self.request_type in (RequestType.WRITE, RequestType.DDL)

    @property
    def alters_schema(self) -> bool:
        return self.request_type is RequestType.DDL

    def cache_key(self) -> Tuple[str, Tuple[Any, ...]]:
        """Key under which a SELECT result may be cached."""
        return (self.sql, tuple(self.parameters))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        text = self.sql if len(self.sql) <= 60 else self.sql[:57] + "..."
        return f"{type(self).__name__}(#{self.request_id}, {text!r})"


@dataclass(repr=False)
class SelectRequest(AbstractRequest):
    """A read-only request, routed to a single backend (read-one)."""

    @property
    def request_type(self) -> RequestType:
        return RequestType.SELECT


@dataclass(repr=False)
class WriteRequest(AbstractRequest):
    """An INSERT/UPDATE/DELETE, broadcast to every backend holding the tables."""

    @property
    def request_type(self) -> RequestType:
        return RequestType.WRITE


@dataclass(repr=False)
class DDLRequest(AbstractRequest):
    """CREATE/DROP/ALTER: broadcast like a write and updates backend schemas."""

    @property
    def request_type(self) -> RequestType:
        return RequestType.DDL


def freeze_parameter_sets(parameter_sets) -> Tuple[Tuple[Any, ...], ...]:
    """A tuple-of-tuples view of ``parameter_sets``, copying only if needed.

    Batch parameter sets cross several layers (driver → factory → request →
    recovery log); each one requires the frozen shape, and this helper makes
    re-freezing an already-frozen batch free instead of an O(rows) copy.
    """
    if type(parameter_sets) is tuple and all(
        type(parameters) is tuple for parameters in parameter_sets
    ):
        return parameter_sets
    return tuple(tuple(parameters) for parameters in parameter_sets)


@dataclass(repr=False)
class BatchWriteRequest(AbstractRequest):
    """One write template executed with many parameter sets (server-side batch).

    The whole batch flows through the controller pipeline *once*: one
    scheduler ticket, one recovery-log group, one cache-invalidation pass
    over the written tables, and one broadcast task per backend that checks
    out a single connection and executes every parameter set on it.  This is
    the server-side counterpart of JDBC's ``addBatch``/``executeBatch``.
    """

    #: the parameter sets to execute, in order, against :attr:`sql`
    parameter_sets: Tuple[Tuple[Any, ...], ...] = ()

    @property
    def request_type(self) -> RequestType:
        return RequestType.WRITE

    @property
    def batch_size(self) -> int:
        return len(self.parameter_sets)


@dataclass(repr=False)
class TransactionMarkerRequest(AbstractRequest):
    """Base class for begin/commit/rollback markers."""


@dataclass(repr=False)
class BeginRequest(TransactionMarkerRequest):
    @property
    def request_type(self) -> RequestType:
        return RequestType.BEGIN


@dataclass(repr=False)
class CommitRequest(TransactionMarkerRequest):
    @property
    def request_type(self) -> RequestType:
        return RequestType.COMMIT


@dataclass(repr=False)
class RollbackRequest(TransactionMarkerRequest):
    @property
    def request_type(self) -> RequestType:
        return RequestType.ROLLBACK


@dataclass
class RequestResult:
    """Result returned by the controller to the driver.

    For SELECTs this is a fully materialized result set (the C-JDBC driver
    serializes the whole ResultSet so the client can browse it locally,
    paper §2.3); for writes it is the update count.
    """

    columns: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    update_count: int = -1
    #: name of the backend that produced the result (reads) or number of
    #: backends that executed it (writes); useful for tests and monitoring.
    backend_name: Optional[str] = None
    backends_executed: int = 0
    from_cache: bool = False
    #: transaction id allocated by the controller for a BEGIN request
    transaction_id: Optional[int] = None

    @property
    def is_query_result(self) -> bool:
        return bool(self.columns)

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def copy(self) -> "RequestResult":
        # dataclasses.replace carries every field (incl. any added later);
        # only the containers are rebuilt
        return dataclasses.replace(
            self, columns=list(self.columns), rows=[list(row) for row in self.rows]
        )

    def frozen(self) -> "RequestResult":
        """A copy whose rows are immutable tuples.

        Used by the query result cache: the frozen master copy can be
        checked out to many clients with a cheap shallow copy (fresh row
        list, shared immutable rows) instead of a per-hit deep copy, and no
        client can mutate a row another client sees.
        """
        return dataclasses.replace(
            self, columns=list(self.columns), rows=[tuple(row) for row in self.rows]
        )

    def checkout(self) -> "RequestResult":
        """A per-client view of a frozen master copy (rows shared, container not)."""
        return dataclasses.replace(
            self, columns=list(self.columns), rows=list(self.rows)
        )

    def __len__(self) -> int:
        return len(self.rows)
