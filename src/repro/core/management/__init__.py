"""Monitoring and administration (paper §2.1, Figure 1's JMX server).

The real C-JDBC exposes its components through JMX MBeans and ships an
administration console.  We provide the same capabilities in-process:

* :class:`MBeanRegistry` — register/lookup of manageable components;
* :class:`MonitoringService` — periodic snapshots of controller statistics;
* :class:`AdminConsole` — text commands (enable/disable backend, checkpoint,
  show statistics) used by the examples.
"""

from repro.core.management.console import AdminConsole
from repro.core.management.monitor import MonitoringService
from repro.core.management.registry import MBeanRegistry

__all__ = ["AdminConsole", "MBeanRegistry", "MonitoringService"]
