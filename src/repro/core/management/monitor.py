"""Monitoring service: periodic statistic snapshots of a controller."""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional


class MonitoringService:
    """Collects statistics snapshots, on demand or on a background interval.

    The real C-JDBC exposes live counters through JMX; here the snapshots are
    plain dictionaries that tests and the admin console can inspect, and an
    optional background thread emulates the periodic monitoring collector.
    """

    def __init__(self, controller, interval: float = 1.0, max_history: int = 1000):
        self.controller = controller
        self.interval = interval
        self.max_history = max_history
        self._history: List[Dict] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- on-demand ------------------------------------------------------------------

    def snapshot(self) -> Dict:
        """Take one snapshot of the controller statistics now."""
        stats = self.controller.statistics()
        stats["timestamp"] = time.time()
        with self._lock:
            self._history.append(stats)
            if len(self._history) > self.max_history:
                self._history.pop(0)
        return stats

    def history(self) -> List[Dict]:
        with self._lock:
            return list(self._history)

    def clear(self) -> None:
        with self._lock:
            self._history.clear()

    # -- background collection ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._run, daemon=True, name="cjdbc-monitor")
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval * 2)
            self._thread = None

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.snapshot()
