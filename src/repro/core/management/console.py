"""Text administration console.

A tiny command interpreter over a controller, mirroring the C-JDBC
administration console operations used in the paper's deployment scenarios:
listing virtual databases and backends, enabling/disabling backends, taking
checkpoints and printing statistics.  Commands return strings so the console
can be driven programmatically from tests and examples.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.errors import CJDBCError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import Controller


class AdminConsole:
    """Programmatic administration console for one controller.

    When attached with the optional ``cluster`` facade, cluster-level views
    (client-side connection pools) become available too.
    """

    def __init__(self, controller: "Controller", cluster=None):
        self.controller = controller
        self.cluster = cluster
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self._cmd_help,
            "show": self._cmd_show,
            "enable": self._cmd_enable,
            "disable": self._cmd_disable,
            "checkpoint": self._cmd_checkpoint,
            "recover": self._cmd_recover,
            "stats": self._cmd_stats,
            "scheduler": self._cmd_scheduler,
            "explain": self._cmd_explain,
            "interceptors": self._cmd_interceptors,
            "fault": self._cmd_fault,
            "resync": self._cmd_resync,
            "net": self._cmd_net,
            "pools": self._cmd_pools,
            "group": self._cmd_group,
        }

    def execute(self, command_line: str) -> str:
        """Execute one console command and return its textual output."""
        parts = command_line.strip().split()
        if not parts:
            return ""
        command, args = parts[0].lower(), parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            return f"unknown command {command!r}; try 'help'"
        try:
            return handler(args)
        except CJDBCError as exc:
            return f"error: {exc}"

    # -- commands ---------------------------------------------------------------------

    def _cmd_help(self, args: List[str]) -> str:
        return (
            "commands:\n"
            "  show databases | show backends <vdb>\n"
            "  enable <vdb> <backend> [<checkpoint>]\n"
            "  disable <vdb> <backend> [checkpoint]\n"
            "  checkpoint <vdb> <backend> [<name>]\n"
            "  recover <vdb> <backend> [<checkpoint>]\n"
            "  stats <vdb>\n"
            "  scheduler <vdb> (scheduler variant, wait accounting,"
            " lock/conflict counters)\n"
            "  explain <vdb> <sql> (route plan: chosen backend(s), costs, merge)\n"
            "  interceptors <vdb>\n"
            "  fault <vdb> <backend> status|crash|recover|clear\n"
            "  fault <vdb> <backend> latency <ms> [probability]\n"
            "  fault <vdb> <backend> error [probability]\n"
            "  resync <vdb> <backend>\n"
            "  net (TCP front-end status of this controller)\n"
            "  pools (client-side connection pool statistics; needs a cluster)\n"
            "  group <vdb> (membership view, sequencer and heartbeat status of a"
            " distributed vdb)"
        )

    def _cmd_show(self, args: List[str]) -> str:
        if not args or args[0] == "databases":
            return "\n".join(self.controller.virtual_database_names)
        if args[0] == "backends" and len(args) > 1:
            vdb = self.controller.get_virtual_database(args[1])
            lines = []
            for backend in vdb.backends:
                lines.append(
                    f"{backend.name}: {backend.state.value}, "
                    f"{backend.total_requests} requests, "
                    f"{len(backend.tables)} tables"
                )
            return "\n".join(lines)
        return "usage: show databases | show backends <vdb>"

    def _cmd_enable(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: enable <vdb> <backend> [<checkpoint>]"
        vdb = self.controller.get_virtual_database(args[0])
        checkpoint = args[2] if len(args) > 2 else None
        vdb.enable_backend(args[1], from_checkpoint=checkpoint)
        return f"backend {args[1]} enabled"

    def _cmd_disable(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: disable <vdb> <backend> [checkpoint]"
        vdb = self.controller.get_virtual_database(args[0])
        with_checkpoint = len(args) > 2 and args[2] == "checkpoint"
        checkpoint_name = vdb.disable_backend(args[1], with_checkpoint=with_checkpoint)
        if checkpoint_name:
            return f"backend {args[1]} disabled (checkpoint {checkpoint_name})"
        return f"backend {args[1]} disabled"

    def _cmd_checkpoint(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: checkpoint <vdb> <backend> [<name>]"
        vdb = self.controller.get_virtual_database(args[0])
        name = args[2] if len(args) > 2 else None
        checkpoint_name = vdb.checkpoint_backend(args[1], name=name)
        return f"checkpoint {checkpoint_name} taken on backend {args[1]}"

    def _cmd_recover(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: recover <vdb> <backend> [<checkpoint>]"
        vdb = self.controller.get_virtual_database(args[0])
        checkpoint = args[2] if len(args) > 2 else None
        replayed = vdb.recover_backend(args[1], checkpoint_name=checkpoint)
        return f"backend {args[1]} recovered ({replayed} log entries replayed)"

    def _cmd_interceptors(self, args: List[str]) -> str:
        if not args:
            return "usage: interceptors <vdb>"
        vdb = self.controller.get_virtual_database(args[0])
        pipeline = vdb.pipeline
        lines = [f"stages: {' -> '.join(pipeline.stage_names)}"]
        interceptors = pipeline.interceptors
        if not interceptors:
            lines.append("interceptors: none")
        for interceptor in interceptors:
            lines.append(
                f"{interceptor.name}: "
                + json.dumps(interceptor.statistics(), sort_keys=True, default=str)
            )
        return "\n".join(lines)

    def _cmd_fault(self, args: List[str]) -> str:
        usage = (
            "usage: fault <vdb> <backend> status|crash|recover|clear"
            " | latency <ms> [probability] | error [probability]"
        )
        if len(args) < 3:
            return usage
        vdb = self.controller.get_virtual_database(args[0])
        injector = vdb.fault_injector(args[1])
        action = args[2].lower()
        if action == "status":
            return json.dumps(injector.statistics(), indent=2, sort_keys=True, default=str)
        if action == "crash":
            injector.crash()
            return f"backend {args[1]} crashed (every operation now fails)"
        if action == "recover":
            injector.recover()
            return f"backend {args[1]} fault state cleared (operations succeed again)"
        if action == "clear":
            injector.clear()
            return f"fault rules cleared on backend {args[1]}"
        try:
            if action == "latency":
                if len(args) < 4:
                    return usage
                latency_ms = float(args[3])
                probability = float(args[4]) if len(args) > 4 else None
                injector.inject("latency", latency_ms=latency_ms, probability=probability)
                return (
                    f"latency fault armed on backend {args[1]}:"
                    f" {latency_ms:g}ms"
                    + (f" with probability {probability:g}" if probability is not None else "")
                )
            if action == "error":
                probability = float(args[3]) if len(args) > 3 else None
                injector.inject("error", probability=probability)
                return (
                    f"transient-error fault armed on backend {args[1]}"
                    + (f" with probability {probability:g}" if probability is not None else "")
                )
        except ValueError:
            return usage
        return usage

    def _cmd_resync(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: resync <vdb> <backend>"
        vdb = self.controller.get_virtual_database(args[0])
        replayed = vdb.resynchronize_backend(args[1])
        return f"backend {args[1]} resynchronized ({replayed} log entries replayed)"

    def _cmd_net(self, args: List[str]) -> str:
        server = self.controller.network_server
        if server is None:
            return "no network server attached to this controller"
        return json.dumps(server.statistics(), indent=2, sort_keys=True, default=str)

    def _cmd_group(self, args: List[str]) -> str:
        if not args:
            return "usage: group <vdb>"
        vdb = self.controller.get_virtual_database(args[0])
        group_status = getattr(vdb, "group_status", None)
        if group_status is None:
            return (
                f"virtual database {args[0]!r} is not distributed"
                " (no group communication attached)"
            )
        return json.dumps(group_status(), indent=2, sort_keys=True, default=str)

    def _cmd_pools(self, args: List[str]) -> str:
        if self.cluster is None:
            return "no cluster attached to this console (pools are a cluster-level view)"
        stats = self.cluster.pool_statistics()
        if not stats:
            return "no connection pools created through this cluster"
        return json.dumps(stats, indent=2, sort_keys=True, default=str)

    def _cmd_explain(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: explain <vdb> <sql>"
        vdb = self.controller.get_virtual_database(args[0])
        # the command line was whitespace-split; the SQL is everything after
        # the vdb name
        sql = " ".join(args[1:])
        result = vdb.explain_route(sql)
        width = max(len(row[0]) for row in result.rows)
        return "\n".join(f"{field:<{width}}  {value}" for field, value in result.rows)

    def _cmd_stats(self, args: List[str]) -> str:
        if not args:
            return json.dumps(self.controller.statistics(), indent=2, default=str)
        vdb = self.controller.get_virtual_database(args[0])
        return json.dumps(vdb.statistics(), indent=2, default=str)

    def _cmd_scheduler(self, args: List[str]) -> str:
        if not args:
            return "usage: scheduler <vdb>"
        vdb = self.controller.get_virtual_database(args[0])
        scheduler = vdb.request_manager.scheduler
        return json.dumps(
            scheduler.statistics(), indent=2, sort_keys=True, default=str
        )
