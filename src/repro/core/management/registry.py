"""A minimal MBean-like registry.

Components register themselves under hierarchical names
(``controller:main``, ``virtualdatabase:tpcw``); management tools look them
up by name or pattern and call their ``statistics()`` method, mirroring how
the JMX console of the paper inspects a running controller.
"""

from __future__ import annotations

import fnmatch
import threading
from typing import Any, Dict, List, Optional, Tuple


class MBeanRegistry:
    """Thread-safe name → managed object registry."""

    def __init__(self):
        self._beans: Dict[str, Any] = {}
        self._lock = threading.RLock()

    def register(self, name: str, bean: Any) -> None:
        with self._lock:
            self._beans[name] = bean

    def unregister(self, name: str) -> None:
        with self._lock:
            self._beans.pop(name, None)

    def lookup(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._beans.get(name)

    def query(self, pattern: str = "*") -> List[Tuple[str, Any]]:
        """Return (name, bean) pairs whose name matches the glob pattern."""
        with self._lock:
            return sorted(
                (name, bean)
                for name, bean in self._beans.items()
                if fnmatch.fnmatch(name, pattern)
            )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._beans)

    def statistics(self, pattern: str = "*") -> Dict[str, Any]:
        """Collect ``statistics()`` from every matching bean that provides it."""
        snapshot = {}
        for name, bean in self.query(pattern):
            stats = getattr(bean, "statistics", None)
            if callable(stats):
                snapshot[name] = stats()
        return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._beans)
