"""SQL request parsing for the controller.

Load balancers supporting partial replication "must parse the incoming
queries and need to know the database schema of each backend" (paper
§2.4.3).  This module classifies a SQL statement (read / write / DDL /
transaction marker), extracts the tables it references and rewrites
non-deterministic macros, producing the request objects of
:mod:`repro.core.request`.

Parsing uses the SQL substrate's tokenizer only (not the full parser), so the
controller accepts any backend dialect as long as the statement shape is
recognisable — the same trade-off made by C-JDBC, which did lightweight
parsing of the SQL strings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.macros import rewrite_macros
from repro.core.request import (
    AbstractRequest,
    BeginRequest,
    CommitRequest,
    DDLRequest,
    RollbackRequest,
    SelectRequest,
    WriteRequest,
)
from repro.errors import SQLSyntaxError
from repro.sql.lexer import TokenType, tokenize


class RequestFactory:
    """Builds request objects from raw SQL strings.

    ``rewrite_write_macros`` mirrors the scheduler behaviour described in the
    paper: only statements that modify the database need deterministic
    rewriting (reads can evaluate NOW()/RAND() wherever they run).
    """

    def __init__(self, rewrite_write_macros: bool = True):
        self.rewrite_write_macros = rewrite_write_macros

    def create_request(
        self,
        sql: str,
        parameters: Sequence[object] = (),
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> AbstractRequest:
        """Parse ``sql`` and wrap it in the appropriate request object."""
        stripped = sql.strip()
        if not stripped:
            raise SQLSyntaxError("empty SQL statement")
        first_word = _first_word(stripped)
        common = dict(
            parameters=tuple(parameters),
            login=login,
            transaction_id=transaction_id,
        )
        if first_word in ("BEGIN", "START"):
            return BeginRequest(sql=stripped, **common)
        if first_word == "COMMIT":
            return CommitRequest(sql=stripped, **common)
        if first_word == "ROLLBACK":
            return RollbackRequest(sql=stripped, **common)
        if first_word == "SELECT":
            tables = tuple(extract_tables(stripped))
            return SelectRequest(sql=stripped, tables=tables, **common)
        if first_word in ("INSERT", "UPDATE", "DELETE"):
            rewritten, changed = (
                rewrite_macros(stripped) if self.rewrite_write_macros else (stripped, False)
            )
            tables = tuple(extract_tables(rewritten))
            return WriteRequest(
                sql=rewritten, tables=tables, macros_rewritten=changed, **common
            )
        if first_word in ("CREATE", "DROP", "ALTER"):
            tables = tuple(extract_tables(stripped))
            return DDLRequest(sql=stripped, tables=tables, **common)
        raise SQLSyntaxError(f"unsupported SQL statement: {stripped[:80]!r}")


def _first_word(sql: str) -> str:
    for token in tokenize(sql):
        if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            return token.value.upper()
        break
    return ""


def extract_tables(sql: str) -> List[str]:
    """Extract the table names referenced by a statement.

    Handles ``FROM x [AS a] [, y]``, ``JOIN y``, ``INSERT INTO x``,
    ``UPDATE x``, ``DELETE FROM x``, ``CREATE/DROP TABLE x``,
    ``CREATE INDEX i ON x`` and ``ALTER TABLE x``.  Subqueries contribute
    their tables too because the whole token stream is scanned.
    """
    tokens = tokenize(sql)
    tables: List[str] = []
    seen = set()

    def add(name: str) -> None:
        key = name.lower()
        if key not in seen:
            seen.add(key)
            tables.append(name)

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.type is TokenType.KEYWORD:
            keyword = token.value
            if keyword in ("FROM", "JOIN"):
                index = _collect_table_list(tokens, index + 1, add, allow_list=(keyword == "FROM"))
                continue
            if keyword == "INTO" or keyword == "UPDATE":
                index = _collect_table_list(tokens, index + 1, add, allow_list=False)
                continue
            if keyword == "TABLE":
                index = _collect_table_list(tokens, index + 1, add, allow_list=False)
                continue
            if keyword == "INDEX":
                # CREATE INDEX name ON table / DROP INDEX name ON table
                on_index = index + 1
                while on_index < len(tokens) and not tokens[on_index].matches(
                    TokenType.KEYWORD, "ON"
                ):
                    if tokens[on_index].type is TokenType.EOF:
                        break
                    on_index += 1
                if on_index < len(tokens) and tokens[on_index].matches(TokenType.KEYWORD, "ON"):
                    index = _collect_table_list(tokens, on_index + 1, add, allow_list=False)
                    continue
        index += 1
    return tables


def _collect_table_list(tokens, index: int, add, allow_list: bool) -> int:
    """Collect ``table [alias] [, table [alias]]*`` starting at ``index``."""
    while True:
        # skip IF NOT EXISTS / IF EXISTS between TABLE and the name
        while index < len(tokens) and tokens[index].type is TokenType.KEYWORD and tokens[
            index
        ].value in ("IF", "NOT", "EXISTS"):
            index += 1
        if index >= len(tokens) or tokens[index].type is not TokenType.IDENTIFIER:
            return index
        add(tokens[index].value)
        index += 1
        # optional alias: IDENTIFIER or AS IDENTIFIER (but stop at '(' which
        # means the previous identifier was actually a function call)
        if index < len(tokens) and tokens[index].matches(TokenType.KEYWORD, "AS"):
            index += 1
            if index < len(tokens) and tokens[index].type is TokenType.IDENTIFIER:
                index += 1
        elif index < len(tokens) and tokens[index].type is TokenType.IDENTIFIER:
            index += 1
        if allow_list and index < len(tokens) and tokens[index].matches(
            TokenType.PUNCTUATION, ","
        ):
            index += 1
            continue
        return index
