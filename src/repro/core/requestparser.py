"""SQL request parsing for the controller.

Load balancers supporting partial replication "must parse the incoming
queries and need to know the database schema of each backend" (paper
§2.4.3).  This module classifies a SQL statement (read / write / DDL /
transaction marker), extracts the tables it references and rewrites
non-deterministic macros, producing the request objects of
:mod:`repro.core.request`.

Parsing uses the SQL substrate's tokenizer only (not the full parser), so the
controller accepts any backend dialect as long as the statement shape is
recognisable — the same trade-off made by C-JDBC, which did lightweight
parsing of the SQL strings.

Because applications issue the same statement shapes over and over (the
paper's parsing cache, §2.4.2), :class:`RequestFactory` memoizes the outcome
of classification and table extraction in an LRU :class:`ParsingCache` keyed
by ``(sql, rewrite flag)``.  A cached template stamps its classification and
tables onto a fresh request object; statements containing non-deterministic
macros (NOW(), RAND(), ...) cache the template *pre-rewrite* and re-run the
macro rewriter on every instantiation, so cached writes never reuse a stale
timestamp or random value.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Type

from repro.core.macros import contains_macro, rewrite_macros
from repro.core.request import (
    AbstractRequest,
    BatchWriteRequest,
    BeginRequest,
    CommitRequest,
    DDLRequest,
    RollbackRequest,
    SelectRequest,
    WriteRequest,
    freeze_parameter_sets,
)
from repro.errors import CJDBCError, SQLSyntaxError
from repro.sql.lexer import TokenType, tokenize


class ParsedTemplate:
    """The reusable outcome of parsing one SQL string.

    ``sql`` is the stripped statement text *before* macro rewriting; when
    ``needs_macro_rewrite`` is set the rewriter runs again for every request
    instantiated from this template.
    """

    __slots__ = (
        "request_class",
        "sql",
        "tables",
        "needs_macro_rewrite",
        "cached_plan",
    )

    def __init__(
        self,
        request_class: Type[AbstractRequest],
        sql: str,
        tables: Tuple[str, ...] = (),
        needs_macro_rewrite: bool = False,
    ):
        self.request_class = request_class
        self.sql = sql
        self.tables = tables
        self.needs_macro_rewrite = needs_macro_rewrite
        #: ``(planner, version, RoutePlan)`` stamped by the query planner;
        #: re-executions of this statement shape skip planning while the
        #: planner's version counter stands still
        self.cached_plan = None

    @property
    def is_write(self) -> bool:
        """True for INSERT/UPDATE/DELETE templates (the batchable shapes)."""
        return self.request_class is WriteRequest

    @property
    def is_read_only(self) -> bool:
        return self.request_class is SelectRequest

    def require_batchable(self, error_class: type = CJDBCError) -> None:
        """Raise unless this template may be executed as a batch.

        The single source of the batchability rule: every layer (driver
        ``add_batch``, controller handle, distributed replica) funnels
        through here, with ``error_class`` selecting the layer's idiom
        (``InterfaceError`` at the driver, ``CJDBCError`` elsewhere).
        """
        if not self.is_write:
            raise error_class(
                f"only INSERT/UPDATE/DELETE statements can be batched,"
                f" got: {self.sql[:80]!r}"
            )

    def instantiate(
        self,
        parameters: Sequence[object],
        login: str,
        transaction_id: Optional[int],
    ) -> AbstractRequest:
        sql = self.sql
        macros_rewritten = False
        if self.needs_macro_rewrite:
            sql, macros_rewritten = rewrite_macros(sql)
        request = self.request_class(
            sql=sql,
            tables=self.tables,
            macros_rewritten=macros_rewritten,
            parameters=tuple(parameters),
            login=login,
            transaction_id=transaction_id,
        )
        # back-link for the query planner's per-template plan cache
        request.template = self
        return request

    def instantiate_batch(
        self,
        parameter_sets: Sequence[Sequence[object]],
        login: str,
        transaction_id: Optional[int],
    ) -> BatchWriteRequest:
        """One :class:`BatchWriteRequest` covering every parameter set.

        Macros are rewritten once per batch, so every row of the batch (and
        every backend it is broadcast to) sees the same NOW()/RAND() value —
        the same determinism guarantee a single write gets.
        """
        self.require_batchable()
        parameter_sets = freeze_parameter_sets(parameter_sets)
        if not parameter_sets:
            raise CJDBCError("a batch needs at least one parameter set")
        sql = self.sql
        macros_rewritten = False
        if self.needs_macro_rewrite:
            sql, macros_rewritten = rewrite_macros(sql)
        request = BatchWriteRequest(
            sql=sql,
            tables=self.tables,
            macros_rewritten=macros_rewritten,
            parameter_sets=parameter_sets,
            login=login,
            transaction_id=transaction_id,
        )
        request.template = self
        return request


@dataclass
class ParsingCacheStatistics:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class ParsingCache:
    """Bounded LRU cache of :class:`ParsedTemplate` objects.

    Keys are ``(sql, rewrite_write_macros)`` so factories with different
    rewrite settings can share one cache without mixing templates.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError(f"parsing cache needs max_entries >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, bool], ParsedTemplate]" = OrderedDict()
        self._lock = threading.Lock()
        self.statistics = ParsingCacheStatistics()

    def get(self, key: Tuple[str, bool]) -> Optional[ParsedTemplate]:
        with self._lock:
            template = self._entries.get(key)
            if template is None:
                self.statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            self.statistics.hits += 1
            return template

    def put(self, key: Tuple[str, bool], template: ParsedTemplate) -> None:
        with self._lock:
            self._entries[key] = template
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1

    def flush(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> dict:
        """Statistics plus occupancy, for controller monitoring."""
        stats = self.statistics.as_dict()
        stats["entries"] = len(self)
        stats["max_entries"] = self.max_entries
        return stats


class RequestFactory:
    """Builds request objects from raw SQL strings.

    ``rewrite_write_macros`` mirrors the scheduler behaviour described in the
    paper: only statements that modify the database need deterministic
    rewriting (reads can evaluate NOW()/RAND() wherever they run).

    ``parsing_cache_size`` bounds the LRU parsing cache; ``0`` disables
    caching entirely (every statement is re-tokenized, the pre-cache
    behaviour).  A pre-built :class:`ParsingCache` can be shared between
    factories via ``parsing_cache``.
    """

    def __init__(
        self,
        rewrite_write_macros: bool = True,
        parsing_cache_size: int = 1024,
        parsing_cache: Optional[ParsingCache] = None,
    ):
        self.rewrite_write_macros = rewrite_write_macros
        if parsing_cache is not None:
            self.parsing_cache: Optional[ParsingCache] = parsing_cache
        elif parsing_cache_size > 0:
            self.parsing_cache = ParsingCache(max_entries=parsing_cache_size)
        else:
            self.parsing_cache = None

    def get_template(self, sql: str) -> ParsedTemplate:
        """The (cached) parse outcome for ``sql``.

        This is the handle behind prepared statements: holding on to the
        template lets repeated executions skip classification and table
        extraction entirely, paying only request instantiation.
        """
        cache = self.parsing_cache
        if cache is None:
            return self._parse_template(sql)
        key = (sql, self.rewrite_write_macros)
        template = cache.get(key)
        if template is None:
            template = self._parse_template(sql)
            cache.put(key, template)
        return template

    def create_request(
        self,
        sql: str,
        parameters: Sequence[object] = (),
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> AbstractRequest:
        """Parse ``sql`` and wrap it in the appropriate request object."""
        return self.get_template(sql).instantiate(parameters, login, transaction_id)

    def create_batch_request(
        self,
        sql: str,
        parameter_sets: Sequence[Sequence[object]],
        login: str = "",
        transaction_id: Optional[int] = None,
    ) -> BatchWriteRequest:
        """Parse a write template and bind N parameter sets to it."""
        return self.get_template(sql).instantiate_batch(
            parameter_sets, login, transaction_id
        )

    def _parse_template(self, sql: str) -> ParsedTemplate:
        stripped = sql.strip()
        if not stripped:
            raise SQLSyntaxError("empty SQL statement")
        first_word = _first_word(stripped)
        if first_word in ("BEGIN", "START"):
            return ParsedTemplate(BeginRequest, stripped)
        if first_word == "COMMIT":
            return ParsedTemplate(CommitRequest, stripped)
        if first_word == "ROLLBACK":
            return ParsedTemplate(RollbackRequest, stripped)
        if first_word == "SELECT":
            tables = tuple(extract_tables(stripped))
            return ParsedTemplate(SelectRequest, stripped, tables)
        if first_word in ("INSERT", "UPDATE", "DELETE"):
            tables = tuple(extract_tables(stripped))
            needs_rewrite = self.rewrite_write_macros and contains_macro(stripped)
            return ParsedTemplate(
                WriteRequest, stripped, tables, needs_macro_rewrite=needs_rewrite
            )
        if first_word in ("CREATE", "DROP", "ALTER"):
            tables = tuple(extract_tables(stripped))
            return ParsedTemplate(DDLRequest, stripped, tables)
        raise SQLSyntaxError(f"unsupported SQL statement: {stripped[:80]!r}")


def _first_word(sql: str) -> str:
    for token in tokenize(sql):
        if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            return token.value.upper()
        break
    return ""


def extract_tables(sql: str) -> List[str]:
    """Extract the table names referenced by a statement.

    Handles ``FROM x [AS a] [, y]``, ``JOIN y``, ``INSERT INTO x``,
    ``UPDATE x``, ``DELETE FROM x``, ``CREATE/DROP TABLE x``,
    ``CREATE INDEX i ON x`` and ``ALTER TABLE x``.  Subqueries contribute
    their tables too because the whole token stream is scanned.
    """
    tokens = tokenize(sql)
    tables: List[str] = []
    seen = set()

    def add(name: str) -> None:
        key = name.lower()
        if key not in seen:
            seen.add(key)
            tables.append(name)

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.type is TokenType.KEYWORD:
            keyword = token.value
            if keyword in ("FROM", "JOIN"):
                index = _collect_table_list(tokens, index + 1, add, allow_list=(keyword == "FROM"))
                continue
            if keyword == "INTO" or keyword == "UPDATE":
                index = _collect_table_list(tokens, index + 1, add, allow_list=False)
                continue
            if keyword == "TABLE":
                index = _collect_table_list(tokens, index + 1, add, allow_list=False)
                continue
            if keyword == "INDEX":
                # CREATE INDEX name ON table / DROP INDEX name ON table
                on_index = index + 1
                while on_index < len(tokens) and not tokens[on_index].matches(
                    TokenType.KEYWORD, "ON"
                ):
                    if tokens[on_index].type is TokenType.EOF:
                        break
                    on_index += 1
                if on_index < len(tokens) and tokens[on_index].matches(TokenType.KEYWORD, "ON"):
                    index = _collect_table_list(tokens, on_index + 1, add, allow_list=False)
                    continue
        index += 1
    return tables


def _collect_table_list(tokens, index: int, add, allow_list: bool) -> int:
    """Collect ``table [alias] [, table [alias]]*`` starting at ``index``."""
    while True:
        # skip IF NOT EXISTS / IF EXISTS between TABLE and the name
        while index < len(tokens) and tokens[index].type is TokenType.KEYWORD and tokens[
            index
        ].value in ("IF", "NOT", "EXISTS"):
            index += 1
        if index >= len(tokens) or tokens[index].type is not TokenType.IDENTIFIER:
            return index
        add(tokens[index].value)
        index += 1
        # optional alias: IDENTIFIER or AS IDENTIFIER (but stop at '(' which
        # means the previous identifier was actually a function call)
        if index < len(tokens) and tokens[index].matches(TokenType.KEYWORD, "AS"):
            index += 1
            if index < len(tokens) and tokens[index].type is TokenType.IDENTIFIER:
                index += 1
        elif index < len(tokens) and tokens[index].type is TokenType.IDENTIFIER:
            index += 1
        if allow_list and index < len(tokens) and tokens[index].matches(
            TokenType.PUNCTUATION, ","
        ):
            index += 1
            continue
        return index
