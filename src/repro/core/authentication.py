"""Authentication manager: virtual logins and per-backend real logins.

The C-JDBC controller authenticates clients against *virtual* login/password
pairs defined per virtual database, then maps each virtual login to the real
login/password used to open connections on each backend (paper Figure 1,
"Authentication Manager").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import AuthenticationError


@dataclass
class VirtualUser:
    """A login/password pair known to the virtual database."""

    login: str
    password: str
    is_admin: bool = False


@dataclass
class RealLogin:
    """Credentials used on a specific backend for a given virtual login."""

    backend_name: str
    login: str
    password: str


class AuthenticationManager:
    """Checks virtual credentials and resolves real backend credentials."""

    def __init__(self, transparent: bool = False):
        #: when transparent is True any login/password is accepted and used
        #: as-is on the backends (useful for tests and the quickstart).
        self.transparent = transparent
        self._virtual_users: Dict[str, VirtualUser] = {}
        self._real_logins: Dict[Tuple[str, str], RealLogin] = {}

    # -- configuration ---------------------------------------------------------

    def add_virtual_user(self, login: str, password: str, is_admin: bool = False) -> None:
        self._virtual_users[login] = VirtualUser(login, password, is_admin)

    def add_real_login(
        self, virtual_login: str, backend_name: str, login: str, password: str
    ) -> None:
        self._real_logins[(virtual_login, backend_name)] = RealLogin(
            backend_name, login, password
        )

    @property
    def virtual_logins(self) -> Tuple[str, ...]:
        return tuple(self._virtual_users)

    # -- authentication ----------------------------------------------------------

    def authenticate(self, login: str, password: str) -> VirtualUser:
        """Validate a virtual login; raises :class:`AuthenticationError`."""
        if self.transparent:
            return self._virtual_users.get(login) or VirtualUser(login, password)
        user = self._virtual_users.get(login)
        if user is None or user.password != password:
            raise AuthenticationError(f"invalid virtual login {login!r}")
        return user

    def is_valid(self, login: str, password: str) -> bool:
        try:
            self.authenticate(login, password)
            return True
        except AuthenticationError:
            return False

    def real_login_for(self, virtual_login: str, backend_name: str) -> Optional[RealLogin]:
        """Real credentials to use on ``backend_name`` for ``virtual_login``.

        Falls back to the virtual credentials when no explicit mapping exists
        (the common configuration in the paper's use cases, where all
        backends share one login).
        """
        mapped = self._real_logins.get((virtual_login, backend_name))
        if mapped is not None:
            return mapped
        user = self._virtual_users.get(virtual_login)
        if user is not None:
            return RealLogin(backend_name, user.login, user.password)
        if self.transparent:
            return RealLogin(backend_name, virtual_login, "")
        return None
