"""Database backend wrapper.

A :class:`DatabaseBackend` is the controller-side representation of one real
database (paper Figure 1, "Database Backend" + "Connection Manager").  It
knows how to open connections through the backend's *native driver* (a
connection factory — either :func:`repro.sql.dbapi.connect` for a local
engine, or a C-JDBC driver connection for a nested controller), keeps the
dynamically gathered schema used by partial-replication load balancers, maps
in-flight transactions to connections (implementing *lazy transaction
begin*, paper §2.4.4) and tracks the counters used by the
least-pending-requests-first load balancer.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.connection_manager import (
    ConnectionManager,
    VariablePoolConnectionManager,
)
from repro.core.faults import FaultInjector
from repro.core.request import AbstractRequest, RequestResult
from repro.errors import BackendError, DatabaseError
from repro.planner.plan import BATCH, classify_statement


class BackendState(Enum):
    ENABLED = "ENABLED"
    DISABLED = "DISABLED"
    RECOVERING = "RECOVERING"
    DISABLING = "DISABLING"


class DatabaseBackend:
    """One backend database as seen by a virtual database."""

    def __init__(
        self,
        name: str,
        connection_factory: Callable[[], object],
        connection_manager: Optional[ConnectionManager] = None,
        weight: int = 1,
        static_schema: Optional[Iterable[str]] = None,
        metadata_factory: Optional[Callable[[], object]] = None,
    ):
        self.name = name
        self.weight = weight
        self._connection_factory = connection_factory
        self.connection_manager = connection_manager or VariablePoolConnectionManager(
            connection_factory
        )
        self._metadata_factory = metadata_factory
        self._state = BackendState.DISABLED
        self._state_lock = threading.RLock()
        #: callbacks invoked with this backend after every state change; the
        #: request manager uses this to invalidate its enabled-backend snapshot
        self._state_listeners: List[Callable[["DatabaseBackend"], None]] = []
        #: table names hosted by this backend (lower-cased)
        self._tables: Set[str] = {t.lower() for t in (static_schema or ())}
        self._static_schema = static_schema is not None
        #: transaction id -> dedicated connection (lazy transaction begin)
        self._transaction_connections: Dict[int, object] = {}
        self._transaction_lock = threading.RLock()
        # counters
        self._pending_requests = 0
        self._counters_lock = threading.Lock()
        self.total_requests = 0
        self.total_reads = 0
        self.total_writes = 0
        self.total_batches = 0
        self.total_batched_statements = 0
        self.total_transactions_begun = 0
        self.failures = 0
        #: EWMA of measured service time (seconds) keyed by planner
        #: statement class — the live input behind cost-based routing
        self._service_time_ewma: Dict[str, float] = {}
        self.last_known_checkpoint: Optional[str] = None
        #: optional deterministic fault source wrapped around the connection
        #: layer (chaos testing); None costs nothing on the hot path
        self._fault_injector: Optional[FaultInjector] = None

    # -- state --------------------------------------------------------------------

    @property
    def state(self) -> BackendState:
        # a single attribute read is atomic; taking the lock here would put
        # two lock acquisitions on every request's hot path
        return self._state

    @property
    def is_enabled(self) -> bool:
        return self._state is BackendState.ENABLED

    def add_state_listener(self, listener: Callable[["DatabaseBackend"], None]) -> None:
        with self._state_lock:
            if listener not in self._state_listeners:
                self._state_listeners.append(listener)

    def remove_state_listener(self, listener: Callable[["DatabaseBackend"], None]) -> None:
        with self._state_lock:
            if listener in self._state_listeners:
                self._state_listeners.remove(listener)

    def _notify_state_change(self) -> None:
        with self._state_lock:
            listeners = list(self._state_listeners)
        for listener in listeners:
            listener(self)

    def enable(self) -> None:
        with self._state_lock:
            self._state = BackendState.ENABLED
        try:
            if not self._static_schema:
                self.refresh_schema()
        finally:
            # listeners must see the new state even if schema refresh fails
            self._notify_state_change()

    def disable(self) -> None:
        with self._state_lock:
            self._state = BackendState.DISABLED
        try:
            self.abort_all_transactions()
        finally:
            self._notify_state_change()

    def set_recovering(self) -> None:
        with self._state_lock:
            self._state = BackendState.RECOVERING
        self._notify_state_change()

    # -- fault injection -----------------------------------------------------------

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        return self._fault_injector

    def set_fault_injector(self, injector: Optional[FaultInjector]) -> None:
        """Wrap this backend's connection layer with a fault source."""
        self._fault_injector = injector

    def ensure_fault_injector(self, seed: int = 0) -> FaultInjector:
        """The installed injector, creating an idle one on first use."""
        if self._fault_injector is None:
            self._fault_injector = FaultInjector(seed=seed)
        return self._fault_injector

    def _fault(self, operation: str, sql: str = "") -> None:
        injector = self._fault_injector
        if injector is not None:
            injector.invoke(operation, sql)

    # -- schema -------------------------------------------------------------------

    def refresh_schema(self) -> None:
        """Gather the backend schema through its metadata interface.

        Mirrors the dynamic schema gathering of §2.4.3: "When a backend is
        enabled, the appropriate methods are called on the JDBC
        DatabaseMetaData information of the backend native driver."
        """
        if self._metadata_factory is None:
            return
        metadata = self._metadata_factory()
        names = metadata.get_table_names()
        with self._state_lock:
            self._tables = {name.lower() for name in names}

    def set_static_schema(self, tables: Iterable[str]) -> None:
        with self._state_lock:
            self._tables = {t.lower() for t in tables}
            self._static_schema = True

    def note_ddl(self, request: AbstractRequest) -> None:
        """Update the known schema after a CREATE/DROP statement."""
        sql = request.sql.lstrip().upper()
        with self._state_lock:
            if sql.startswith("CREATE TABLE") and request.tables:
                self._tables.add(request.tables[0].lower())
            elif sql.startswith("DROP TABLE") and request.tables:
                self._tables.discard(request.tables[0].lower())

    @property
    def tables(self) -> Set[str]:
        with self._state_lock:
            return set(self._tables)

    def has_tables(self, tables: Iterable[str]) -> bool:
        """True when every table in ``tables`` is hosted by this backend."""
        wanted = {t.lower() for t in tables}
        with self._state_lock:
            return wanted.issubset(self._tables) if wanted else True

    def has_any_table(self, tables: Iterable[str]) -> bool:
        wanted = {t.lower() for t in tables}
        with self._state_lock:
            return bool(wanted & self._tables)

    # -- load metrics ---------------------------------------------------------------

    #: smoothing factor for the per-class service-time EWMA; 0.2 lets a
    #: changed backend (new load, injected latency) dominate the estimate
    #: within roughly a dozen measurements without tracking per-request noise
    SERVICE_TIME_EWMA_ALPHA = 0.2

    @property
    def pending_requests(self) -> int:
        with self._counters_lock:
            return self._pending_requests

    def _request_started(self, is_read: bool) -> None:
        with self._counters_lock:
            self._pending_requests += 1
            self.total_requests += 1
            if is_read:
                self.total_reads += 1
            else:
                self.total_writes += 1

    def _request_finished(
        self,
        statement_class: Optional[str] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        with self._counters_lock:
            self._pending_requests = max(0, self._pending_requests - 1)
            if statement_class is None or elapsed is None:
                return
            previous = self._service_time_ewma.get(statement_class)
            if previous is None:
                self._service_time_ewma[statement_class] = elapsed
            else:
                alpha = self.SERVICE_TIME_EWMA_ALPHA
                self._service_time_ewma[statement_class] = (
                    alpha * elapsed + (1.0 - alpha) * previous
                )

    @property
    def service_time_ewma(self) -> Dict[str, float]:
        """Per statement class EWMA of measured service time, in seconds."""
        with self._counters_lock:
            return dict(self._service_time_ewma)

    def pool_pressure(self) -> float:
        """Fraction of the connection pool currently checked out (0.0–1.0)."""
        pool_size = getattr(self.connection_manager, "pool_size", 0)
        if not pool_size:
            return 0.0
        checked_out = getattr(self.connection_manager, "_checked_out", 0)
        return min(1.0, max(0, checked_out) / pool_size)

    def planner_inputs(self) -> Dict[str, object]:
        """The live signals the query planner's cost estimator consumes."""
        with self._counters_lock:
            ewma = dict(self._service_time_ewma)
            pending = self._pending_requests
        return {
            "pending_requests": pending,
            "pool_pressure": self.pool_pressure(),
            "service_time_ewma": ewma,
        }

    # -- execution --------------------------------------------------------------------

    def execute_request(self, request: AbstractRequest) -> RequestResult:
        """Execute a read or write request on this backend.

        Autocommit requests borrow a pooled connection for the duration of the
        statement.  Requests inside a transaction run on the connection
        dedicated to that transaction, which is only created (and the
        transaction only begun) on the backend's first statement — lazy
        transaction begin.
        """
        self._request_started(request.is_read_only)
        statement_class = classify_statement(request)
        started = time.perf_counter()
        try:
            if request.transaction_id is None:
                connection = self.connection_manager.get_connection()
                try:
                    return self._execute_on(connection, request)
                finally:
                    self.connection_manager.release_connection(connection)
            connection = self._connection_for_transaction(request.transaction_id)
            return self._execute_on(connection, request)
        except DatabaseError as exc:
            self.failures += 1
            raise BackendError(f"backend {self.name!r}: {exc}") from exc
        finally:
            self._request_finished(statement_class, time.perf_counter() - started)

    def execute_batch(self, request) -> RequestResult:
        """Execute every parameter set of a batch on a single connection.

        The batch counts as *one* request against this backend: one
        connection checkout (or the transaction's dedicated connection), one
        pending-request increment, and the parameter sets run back to back
        on that connection.  The returned update count aggregates all sets.
        Like JDBC batches, a mid-batch failure does not undo the sets that
        already executed in autocommit mode; inside a transaction the
        client's rollback covers them.
        """
        self._request_started(is_read=False)
        started = time.perf_counter()
        try:
            if request.transaction_id is None:
                connection = self.connection_manager.get_connection()
                try:
                    return self._execute_batch_on(connection, request)
                finally:
                    self.connection_manager.release_connection(connection)
            connection = self._connection_for_transaction(request.transaction_id)
            return self._execute_batch_on(connection, request)
        except DatabaseError as exc:
            self.failures += 1
            raise BackendError(f"backend {self.name!r}: {exc}") from exc
        finally:
            self._request_finished(BATCH, time.perf_counter() - started)

    def _execute_batch_on(self, connection, request) -> RequestResult:
        # the native driver's executemany parses the template once and
        # re-executes the plan per set (and a nested controller forwards the
        # whole batch downstream), so per-row cost is execution only
        self._fault("executemany", request.sql)
        cursor = connection.cursor()
        cursor.executemany(request.sql, request.parameter_sets)
        total = cursor.rowcount
        with self._counters_lock:
            self.total_batches += 1
            self.total_batched_statements += len(request.parameter_sets)
        result = RequestResult(update_count=max(total, 0))
        result.backend_name = self.name
        return result

    def _execute_on(self, connection, request: AbstractRequest) -> RequestResult:
        self._fault("execute", request.sql)
        cursor = connection.cursor()
        cursor.execute(request.sql, request.parameters)
        if cursor.description is None:
            result = RequestResult(update_count=cursor.rowcount)
        else:
            result = RequestResult(
                columns=[d[0] for d in cursor.description],
                rows=[list(row) for row in cursor.fetchall()],
                update_count=-1,
            )
        result.backend_name = self.name
        return result

    # -- transaction management ----------------------------------------------------------

    def has_transaction(self, transaction_id: int) -> bool:
        with self._transaction_lock:
            return transaction_id in self._transaction_connections

    def _connection_for_transaction(self, transaction_id: int):
        with self._transaction_lock:
            connection = self._transaction_connections.get(transaction_id)
            if connection is None:
                self._fault("begin")
                connection = self.connection_manager.get_connection()
                connection.begin()
                self._transaction_connections[transaction_id] = connection
                self.total_transactions_begun += 1
            return connection

    def begin_transaction(self, transaction_id: int) -> None:
        """Eagerly start a transaction (used when lazy begin is disabled)."""
        self._connection_for_transaction(transaction_id)

    def commit(self, transaction_id: int) -> bool:
        """Commit ``transaction_id`` if it ever touched this backend.

        Returns True when a transaction was actually committed here.
        """
        with self._transaction_lock:
            connection = self._transaction_connections.pop(transaction_id, None)
        if connection is None:
            return False
        try:
            self._fault("commit")
            connection.commit()
        except DatabaseError as exc:
            self.failures += 1
            raise BackendError(f"backend {self.name!r} commit failed: {exc}") from exc
        finally:
            self._restore_autocommit(connection)
            self.connection_manager.release_connection(connection)
        return True

    def rollback(self, transaction_id: int) -> bool:
        with self._transaction_lock:
            connection = self._transaction_connections.pop(transaction_id, None)
        if connection is None:
            return False
        try:
            self._fault("rollback")
            connection.rollback()
        except DatabaseError as exc:
            self.failures += 1
            raise BackendError(f"backend {self.name!r} rollback failed: {exc}") from exc
        finally:
            self._restore_autocommit(connection)
            self.connection_manager.release_connection(connection)
        return True

    def abort_all_transactions(self) -> None:
        with self._transaction_lock:
            connections = dict(self._transaction_connections)
            self._transaction_connections.clear()
        for connection in connections.values():
            try:
                connection.rollback()
            except Exception:  # noqa: BLE001 - best effort during disable
                pass
            self._restore_autocommit(connection)
            self.connection_manager.release_connection(connection)

    @staticmethod
    def _restore_autocommit(connection) -> None:
        """Return a transaction connection to autocommit before pooling it.

        ``commit()``/``rollback()`` on a manual-commit connection re-open a
        transaction (the JDBC contract the driver follows).  Handing such a
        connection back to the pool poisons it: the next statement that
        borrows it for an autocommit request would silently run inside that
        open transaction and hold its table locks until the pool rotates it
        out — stalling every later write on the backend.  Chaos scenario
        workloads (mixed transactions + autocommit writes) surfaced this.

        The open transaction is rolled back, never committed: on the
        failure paths (an injected or real error raised before the
        connection's own commit/rollback ran) the transaction's writes are
        still pending, and setting ``autocommit = True`` directly would
        durably commit work the client was just told failed.  On the
        success paths the freshly re-opened transaction is empty, so the
        rollback is a no-op.
        """
        try:
            if getattr(connection, "autocommit", True) is False:
                try:
                    connection.rollback()
                except Exception:  # noqa: BLE001 - reset must be best-effort
                    pass
                connection.autocommit = True
        except Exception:  # noqa: BLE001 - a broken connection is the pool's problem
            pass

    @property
    def active_transactions(self) -> List[int]:
        with self._transaction_lock:
            return sorted(self._transaction_connections)

    # -- direct access (checkpointing / recovery) -----------------------------------------

    def raw_connection(self):
        """A connection outside of any pool bookkeeping, for admin tasks."""
        return self._connection_factory()

    def statistics(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "state": self.state.value,
            "weight": self.weight,
            "pending_requests": self.pending_requests,
            "total_requests": self.total_requests,
            "total_reads": self.total_reads,
            "total_writes": self.total_writes,
            "total_batches": self.total_batches,
            "total_batched_statements": self.total_batched_statements,
            "total_transactions": self.total_transactions_begun,
            "failures": self.failures,
            "pool_pressure": round(self.pool_pressure(), 4),
            "service_time_ewma_ms": {
                statement_class: round(seconds * 1000.0, 4)
                for statement_class, seconds in sorted(self.service_time_ewma.items())
            },
            "tables": sorted(self.tables),
            "last_known_checkpoint": self.last_known_checkpoint,
            "faults": (
                self._fault_injector.statistics()
                if self._fault_injector is not None
                else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseBackend({self.name!r}, {self.state.value})"
