"""Connection managers for database backends.

"If the native driver is not capable of connection pooling, C-JDBC can be
configured to provide a connection manager for this purpose" (paper §2.2).
C-JDBC shipped several pooling strategies; we implement the same family:

* :class:`SimpleConnectionManager` — a new connection per checkout;
* :class:`FailFastPoolConnectionManager` — fixed-size pool, error when empty;
* :class:`RandomWaitPoolConnectionManager` — fixed-size pool, blocks until a
  connection is returned (with timeout);
* :class:`VariablePoolConnectionManager` — grows on demand up to an optional
  maximum, shrinks back to the initial size when connections are idle.

A *connection factory* is any zero-argument callable returning a DB-API
connection; this is how the same code manages connections to a local engine
(via :mod:`repro.sql.dbapi`) or to another controller (via
:mod:`repro.core.driver`) for vertical scalability.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Optional, Set

from repro.errors import OperationalError

ConnectionFactory = Callable[[], object]


class ConnectionManager:
    """Base class: checkout / release / close-all over a connection factory."""

    def __init__(self, connection_factory: ConnectionFactory):
        self._factory = connection_factory
        self._lock = threading.Lock()
        self._active: Set[object] = set()
        self.connections_created = 0
        self.checkouts = 0

    # -- interface ---------------------------------------------------------------

    def get_connection(self):  # pragma: no cover - interface
        raise NotImplementedError

    def release_connection(self, connection) -> None:  # pragma: no cover
        raise NotImplementedError

    def close_all(self) -> None:
        with self._lock:
            active = list(self._active)
            self._active.clear()
        for connection in active:
            _safe_close(connection)

    # -- helpers ------------------------------------------------------------------

    def _create(self):
        connection = self._factory()
        with self._lock:
            self.connections_created += 1
            self._active.add(connection)
        return connection

    def _note_checkout(self) -> None:
        with self._lock:
            self.checkouts += 1

    def _forget(self, connection) -> None:
        with self._lock:
            self._active.discard(connection)

    @property
    def active_connections(self) -> int:
        with self._lock:
            return len(self._active)


class SimpleConnectionManager(ConnectionManager):
    """Opens a fresh connection per checkout and closes it on release."""

    def get_connection(self):
        self._note_checkout()
        return self._create()

    def release_connection(self, connection) -> None:
        self._forget(connection)
        _safe_close(connection)


class _PooledConnectionManager(ConnectionManager):
    """Shared machinery for the pool-based managers."""

    def __init__(self, connection_factory: ConnectionFactory, pool_size: int):
        super().__init__(connection_factory)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._idle: Deque[object] = deque()
        self._condition = threading.Condition()
        self._checked_out = 0

    def _prefill(self) -> None:
        for _ in range(self.pool_size):
            self._idle.append(self._create())

    def release_connection(self, connection) -> None:
        with self._condition:
            self._checked_out = max(0, self._checked_out - 1)
            self._idle.append(connection)
            self._condition.notify()

    def discard_connection(self, connection) -> None:
        """Drop a broken connection instead of returning it to the pool."""
        with self._condition:
            self._checked_out = max(0, self._checked_out - 1)
            self._condition.notify()
        self._forget(connection)
        _safe_close(connection)

    @property
    def idle_connections(self) -> int:
        with self._condition:
            return len(self._idle)


class FailFastPoolConnectionManager(_PooledConnectionManager):
    """Fixed-size pool that raises immediately when exhausted."""

    def __init__(self, connection_factory: ConnectionFactory, pool_size: int = 10):
        super().__init__(connection_factory, pool_size)
        self._prefill()

    def get_connection(self):
        self._note_checkout()
        with self._condition:
            if not self._idle:
                raise OperationalError(
                    f"connection pool exhausted ({self.pool_size} connections in use)"
                )
            self._checked_out += 1
            return self._idle.popleft()


class RandomWaitPoolConnectionManager(_PooledConnectionManager):
    """Fixed-size pool that blocks (up to ``timeout`` seconds) when exhausted."""

    def __init__(
        self,
        connection_factory: ConnectionFactory,
        pool_size: int = 10,
        timeout: float = 10.0,
    ):
        super().__init__(connection_factory, pool_size)
        self.timeout = timeout
        self._prefill()

    def get_connection(self):
        self._note_checkout()
        with self._condition:
            if not self._idle:
                self._condition.wait(self.timeout)
            if not self._idle:
                raise OperationalError(
                    f"timed out after {self.timeout}s waiting for a pooled connection"
                )
            self._checked_out += 1
            return self._idle.popleft()


class VariablePoolConnectionManager(_PooledConnectionManager):
    """Pool that grows on demand up to ``max_pool_size`` (None = unbounded)."""

    def __init__(
        self,
        connection_factory: ConnectionFactory,
        initial_pool_size: int = 5,
        max_pool_size: Optional[int] = None,
    ):
        super().__init__(connection_factory, initial_pool_size)
        self.initial_pool_size = initial_pool_size
        self.max_pool_size = max_pool_size
        self._prefill()

    def get_connection(self):
        self._note_checkout()
        with self._condition:
            if self._idle:
                self._checked_out += 1
                return self._idle.popleft()
            total = self._checked_out + len(self._idle)
            if self.max_pool_size is not None and total >= self.max_pool_size:
                raise OperationalError(
                    f"variable pool reached its maximum size ({self.max_pool_size})"
                )
            self._checked_out += 1
        return self._create()

    def release_connection(self, connection) -> None:
        with self._condition:
            self._checked_out = max(0, self._checked_out - 1)
            if len(self._idle) >= self.initial_pool_size:
                # shrink back: close surplus connections instead of pooling them
                self._condition.notify()
                surplus = connection
            else:
                self._idle.append(connection)
                self._condition.notify()
                return
        self._forget(surplus)
        _safe_close(surplus)


def _safe_close(connection) -> None:
    close = getattr(connection, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:  # noqa: BLE001 - closing must never propagate
        pass
