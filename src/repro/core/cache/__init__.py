"""Query result cache (paper §2.4.2).

The cache stores the materialized result set of SELECT requests.  By default
it provides *strong consistency*: any update invalidates every entry that
may contain stale data.  Consistency can be relaxed per table with
:class:`repro.core.cache.rules.RelaxationRule`, which keeps entries for a
bounded staleness period regardless of updates (used by the RUBiS
experiment, Table 1 of the paper).
"""

from repro.core.cache.granularity import (
    CacheGranularity,
    ColumnGranularity,
    DatabaseGranularity,
    FullScanTableGranularity,
    TableGranularity,
)
from repro.core.cache.result_cache import CacheEntry, CacheStatistics, ResultCache
from repro.core.cache.rules import RelaxationRule

__all__ = [
    "CacheEntry",
    "CacheGranularity",
    "CacheStatistics",
    "ColumnGranularity",
    "DatabaseGranularity",
    "FullScanTableGranularity",
    "RelaxationRule",
    "ResultCache",
    "TableGranularity",
]
