"""Relaxed-consistency caching rules.

Paper §2.4.2: "The results of queries that can accept stale data can be kept
in the cache for a time specified by a staleness limit, even though
subsequent update queries may have rendered the cached entry inconsistent."

A :class:`RelaxationRule` matches SELECT requests (by table or by SQL
pattern) and grants them a staleness window during which invalidation is
skipped.  The RUBiS "relaxed cache" configuration of Table 1 uses a single
rule with a 60 second staleness limit applied to every table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.request import AbstractRequest


@dataclass
class RelaxationRule:
    """Grants a staleness window to matching SELECT requests.

    ``tables`` restricts the rule to SELECTs touching only those tables
    (empty means any table).  ``sql_pattern`` is an optional regular
    expression matched against the SQL text.  ``staleness_seconds`` is how
    long a cached entry may be served after an invalidating write;
    ``keep_on_write`` set to False turns the rule into a pure TTL rule that
    still invalidates on writes but expires entries after the window.
    """

    staleness_seconds: float
    tables: tuple = ()
    sql_pattern: Optional[str] = None
    keep_on_write: bool = True

    def __post_init__(self):
        self._compiled = re.compile(self.sql_pattern, re.IGNORECASE) if self.sql_pattern else None
        self._tables = {t.lower() for t in self.tables}

    def matches(self, request: AbstractRequest) -> bool:
        """Does this rule apply to the given SELECT request?"""
        if self._compiled is not None and not self._compiled.search(request.sql):
            return False
        if self._tables:
            request_tables = {t.lower() for t in request.tables}
            if not request_tables or not request_tables.issubset(self._tables):
                return False
        return True


def first_matching_rule(
    rules: Iterable[RelaxationRule], request: AbstractRequest
) -> Optional[RelaxationRule]:
    """Return the first rule applying to ``request`` (rules are ordered)."""
    for rule in rules:
        if rule.matches(request):
            return rule
    return None
