"""The query result cache itself.

Entries are keyed by ``(sql, parameters)``.  A bounded number of entries is
kept with LRU eviction.  Invalidation is delegated to a
:class:`repro.core.cache.granularity.CacheGranularity`; relaxed-consistency
rules may keep an entry alive for a staleness window after an invalidating
write (the entry is then flagged stale and dropped once the window closes).

Invalidation is indexed: the cache maintains an inverted ``table name →
entry keys`` map so a write only visits the entries that actually reference
one of the written tables (plus a small fallback bucket of entries whose
SELECT had no parsed tables, which table granularity must treat
conservatively).  Granularities that are not table-based — e.g. database
granularity, or custom strategies — advertise ``uses_table_index = False``
and fall back to the full scan.  Expired (stale-window) entries are dropped
lazily, when a lookup or an invalidation touches them, rather than by
scanning the whole cache on every write.

The cache accepts an injectable ``clock`` so that the discrete-event
simulator and the tests can control time deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.cache.granularity import CacheGranularity, TableGranularity
from repro.core.cache.rules import RelaxationRule, first_matching_rule
from repro.core.request import AbstractRequest, RequestResult


@dataclass
class CacheEntry:
    """One cached SELECT result."""

    sql: str
    parameters: Tuple
    tables: Tuple[str, ...]
    result: RequestResult
    created_at: float
    #: when set, the entry has been invalidated by a write but survives until
    #: this deadline thanks to a relaxation rule
    stale_deadline: Optional[float] = None
    hits: int = 0

    def is_expired(self, now: float) -> bool:
        return self.stale_deadline is not None and now >= self.stale_deadline


@dataclass
class CacheStatistics:
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    invalidations: int = 0
    stale_hits: int = 0
    evictions: int = 0
    #: entries dropped because their staleness window closed (distinct from
    #: ``invalidations``, which only counts entries dropped by a write)
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "invalidations": self.invalidations,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class ResultCache:
    """LRU query-result cache with pluggable invalidation granularity."""

    def __init__(
        self,
        granularity: Optional[CacheGranularity] = None,
        max_entries: int = 10000,
        relaxation_rules: Iterable[RelaxationRule] = (),
        clock: Optional[Callable[[], float]] = None,
    ):
        self.granularity = granularity or TableGranularity()
        self.max_entries = max_entries
        self.relaxation_rules: List[RelaxationRule] = list(relaxation_rules)
        self._clock = clock or time.monotonic
        self._entries: "OrderedDict[Tuple[str, Tuple], CacheEntry]" = OrderedDict()
        #: inverted index: lower-cased table name -> keys of entries reading it
        self._table_index: Dict[str, Set[Tuple[str, Tuple]]] = {}
        #: entries whose SELECT had no parsed tables (always candidates)
        self._untabled_keys: Set[Tuple[str, Tuple]] = set()
        self._lock = threading.RLock()
        self.statistics = CacheStatistics()

    # -- lookup / store ------------------------------------------------------------

    def get(self, request: AbstractRequest) -> Optional[RequestResult]:
        """Return a cached result for this SELECT, or None on miss."""
        key = request.cache_key()
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
            if entry.is_expired(now):
                self._remove_entry(key, entry)
                self.statistics.expirations += 1
                self.statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.statistics.hits += 1
            if entry.stale_deadline is not None:
                self.statistics.stale_hits += 1
            # copy-on-checkout: the stored master has tuple-frozen rows, so a
            # shallow checkout (fresh row list, shared immutable rows) is both
            # cheap and safe — no client can corrupt another reader's rows
            result = entry.result.checkout()
            result.from_cache = True
            return result

    def put(self, request: AbstractRequest, result: RequestResult) -> RequestResult:
        """Cache the result of a SELECT request (rows frozen to tuples).

        Returns a checkout of the stored master so callers can hand the
        *same shape* to the client on a miss as later hits will see (rows
        are tuples either way, never lists on the first call only).
        """
        key = request.cache_key()
        frozen = result.frozen()
        entry = CacheEntry(
            sql=request.sql,
            parameters=tuple(request.parameters),
            tables=tuple(request.tables),
            result=frozen,
            created_at=self._clock(),
        )
        with self._lock:
            previous = self._entries.get(key)
            if previous is not None:
                self._deindex_entry(key, previous)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._index_entry(key, entry)
            self.statistics.inserts += 1
            while len(self._entries) > self.max_entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self._deindex_entry(evicted_key, evicted)
                self.statistics.evictions += 1
        return frozen.checkout()

    # -- invalidation -----------------------------------------------------------------

    def invalidate(self, write: AbstractRequest) -> int:
        """Process a write: drop or mark-stale every affected entry.

        Only entries referencing one of the written tables are visited (via
        the inverted index) when the granularity is table-based; otherwise
        every entry is scanned.  Returns the number of entries dropped by
        this write; entries whose staleness window had already closed are
        dropped too but counted as ``expirations``, not ``invalidations``.
        """
        now = self._clock()
        dropped = 0
        with self._lock:
            for key in self._candidate_keys(write):
                entry = self._entries.get(key)
                if entry is None:
                    continue
                if entry.is_expired(now):
                    self._remove_entry(key, entry)
                    self.statistics.expirations += 1
                    continue
                if not self.granularity.invalidates(write, entry):
                    continue
                rule = self._rule_for(entry)
                if rule is not None and rule.keep_on_write:
                    if entry.stale_deadline is None:
                        entry.stale_deadline = now + rule.staleness_seconds
                    continue
                self._remove_entry(key, entry)
                dropped += 1
            self.statistics.invalidations += dropped
        return dropped

    def _candidate_keys(self, write: AbstractRequest) -> List[Tuple[str, Tuple]]:
        """Keys a write may invalidate.  Callers must hold the lock.

        A superset of the affected entries: the granularity still decides
        entry by entry.  Falls back to the full key list when the write names
        no tables (conservative) or the granularity is not table-based.
        """
        if not getattr(self.granularity, "uses_table_index", False) or not write.tables:
            return list(self._entries)
        candidates = set(self._untabled_keys)
        for table in write.tables:
            candidates.update(self._table_index.get(table.lower(), ()))
        return list(candidates)

    def _index_entry(self, key: Tuple[str, Tuple], entry: CacheEntry) -> None:
        if not entry.tables:
            self._untabled_keys.add(key)
            return
        for table in entry.tables:
            self._table_index.setdefault(table.lower(), set()).add(key)

    def _deindex_entry(self, key: Tuple[str, Tuple], entry: CacheEntry) -> None:
        if not entry.tables:
            self._untabled_keys.discard(key)
            return
        for table in entry.tables:
            keys = self._table_index.get(table.lower())
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._table_index[table.lower()]

    def _remove_entry(self, key: Tuple[str, Tuple], entry: CacheEntry) -> None:
        del self._entries[key]
        self._deindex_entry(key, entry)

    def _rule_for(self, entry: CacheEntry) -> Optional[RelaxationRule]:
        if not self.relaxation_rules:
            return None
        # Build a lightweight request-like shim for rule matching.
        shim = _EntryShim(entry.sql, entry.tables)
        return first_matching_rule(self.relaxation_rules, shim)

    def flush(self) -> None:
        with self._lock:
            self._entries.clear()
            self._table_index.clear()
            self._untabled_keys.clear()

    # -- introspection ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[CacheEntry]:
        with self._lock:
            return list(self._entries.values())

    def indexed_tables(self) -> List[str]:
        """Tables currently present in the inverted index (for monitoring)."""
        with self._lock:
            return sorted(self._table_index)


class _EntryShim:
    """Just enough of the request interface for rule matching."""

    def __init__(self, sql: str, tables: Tuple[str, ...]):
        self.sql = sql
        self.tables = tables
