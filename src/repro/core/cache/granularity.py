"""Cache invalidation granularities.

The paper (§2.4.2) mentions "different cache invalidation granularities
ranging from database-wide invalidation to table-based or column-based
invalidation with various optimizations".  A granularity decides, for a given
write request, which cached SELECT entries must be invalidated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Set

from repro.core.request import AbstractRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache.result_cache import CacheEntry


class CacheGranularity:
    """Strategy deciding whether a write invalidates a cached entry."""

    name = "abstract"
    #: True when a write can only ever invalidate entries that read one of
    #: the written tables (or entries with no parsed tables).  The result
    #: cache then narrows invalidation to its inverted table index instead of
    #: scanning every entry.  Custom granularities keep the conservative
    #: default (full scan).
    uses_table_index = False

    def invalidates(self, write: AbstractRequest, entry: "CacheEntry") -> bool:
        raise NotImplementedError  # pragma: no cover - interface


class DatabaseGranularity(CacheGranularity):
    """Coarsest granularity: any write invalidates the whole cache."""

    name = "database"

    def invalidates(self, write: AbstractRequest, entry: "CacheEntry") -> bool:
        return True


class TableGranularity(CacheGranularity):
    """A write invalidates entries whose SELECT touches any written table."""

    name = "table"
    uses_table_index = True

    def invalidates(self, write: AbstractRequest, entry: "CacheEntry") -> bool:
        if not write.tables:
            # Unknown write target: be conservative.
            return True
        written = {t.lower() for t in write.tables}
        read = {t.lower() for t in entry.tables}
        if not read:
            return True
        return bool(written & read)


class FullScanTableGranularity(TableGranularity):
    """Table granularity with the inverted invalidation index opted out.

    Identical invalidation decisions to :class:`TableGranularity`, but every
    write scans the whole cache — the pre-index code path.  Used by the
    hot-path benchmark ablation and the index-equivalence tests as the
    reference implementation; not intended for production configurations.
    """

    name = "table-fullscan"
    uses_table_index = False


class ColumnGranularity(CacheGranularity):
    """Table granularity refined with the columns named by the write.

    A cached SELECT is kept when it shares tables with the write but none of
    the columns assigned by an UPDATE appear in the SELECT text.  INSERT and
    DELETE statements fall back to table granularity because they change row
    membership, which any SELECT on the table can observe.
    """

    name = "column"
    # column granularity first requires a table overlap, so the index applies
    uses_table_index = True

    def invalidates(self, write: AbstractRequest, entry: "CacheEntry") -> bool:
        if not TableGranularity().invalidates(write, entry):
            return False
        columns = _updated_columns(write.sql)
        if columns is None:
            return True
        select_text = entry.sql.lower()
        return any(column in select_text for column in columns) or "*" in select_text


def _updated_columns(sql: str) -> Set[str] | None:
    """Columns assigned by an UPDATE statement, or None when not an UPDATE."""
    lowered = sql.lower()
    if not lowered.lstrip().startswith("update"):
        return None
    set_index = lowered.find(" set ")
    if set_index == -1:
        return None
    where_index = lowered.find(" where ", set_index)
    assignments = lowered[set_index + 5 : where_index if where_index != -1 else None]
    columns: Set[str] = set()
    for assignment in assignments.split(","):
        name = assignment.split("=", 1)[0].strip()
        if "." in name:
            name = name.split(".", 1)[1]
        if name:
            columns.add(name)
    return columns


def granularity_from_name(name: str) -> CacheGranularity:
    """Factory used by the configuration layer."""
    lowered = name.strip().lower()
    if lowered == "database":
        return DatabaseGranularity()
    if lowered == "table":
        return TableGranularity()
    if lowered == "column":
        return ColumnGranularity()
    raise ValueError(f"unknown cache granularity {name!r}")
