"""Build schedulers from configuration values (string name or options mapping).

The ``scheduler:`` knob of a virtual database accepts either a plain name::

    scheduler: mvcc

or a mapping with per-variant options::

    scheduler:
      name: table_lock
      lock_timeout: 2.0        # seconds; table_lock only

    scheduler:
      name: mvcc
      conflict_policy: detect_only   # mvcc only

Unknown names, unknown keys and options applied to the wrong variant are
all :class:`~repro.errors.ConfigurationError`\\ s, raised at build time so a
bad descriptor fails validation instead of booting.
"""

from __future__ import annotations

from typing import Any, Mapping, Union

from repro.core.scheduler.base import (
    AbstractScheduler,
    OptimisticTransactionLevelScheduler,
    PassThroughScheduler,
    PessimisticTransactionLevelScheduler,
)
from repro.core.scheduler.locking import TableLockScheduler
from repro.core.scheduler.mvcc import CONFLICT_POLICIES, MVCCScheduler
from repro.errors import ConfigurationError

#: accepted name/alias -> canonical scheduler name
_ALIASES = {
    "passthrough": "passthrough",
    "pass_through": "passthrough",
    "singledb": "passthrough",
    "optimistic": "optimistic",
    "pessimistic": "pessimistic",
    "table_lock": "table_lock",
    "tablelock": "table_lock",
    "table-lock": "table_lock",
    "mvcc": "mvcc",
    "snapshot": "mvcc",
}

#: the canonical scheduler names, for error messages and iteration
SCHEDULER_NAMES = ("mvcc", "optimistic", "passthrough", "pessimistic", "table_lock")

_OPTION_KEYS = {"name", "lock_timeout", "conflict_policy"}

SchedulerSpec = Union[str, Mapping[str, Any]]


def canonical_scheduler_name(name: str) -> str:
    """Resolve a name/alias to its canonical form, or raise."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"scheduler name must be a string, got {type(name).__name__}"
        )
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        raise ConfigurationError(
            f"unknown scheduler {name!r}"
            f" (expected one of: {', '.join(SCHEDULER_NAMES)})"
        )
    return canonical


def build_scheduler(spec: SchedulerSpec = "optimistic") -> AbstractScheduler:
    """Instantiate a scheduler from a name or an options mapping."""
    if isinstance(spec, str):
        name, options = spec, {}
    elif isinstance(spec, Mapping):
        unknown = sorted(set(spec) - _OPTION_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown scheduler option{'s' if len(unknown) > 1 else ''}"
                f" {', '.join(map(repr, unknown))}"
                f" (expected one of: {', '.join(sorted(_OPTION_KEYS))})"
            )
        if "name" not in spec:
            raise ConfigurationError("a scheduler mapping needs a 'name' key")
        name, options = spec["name"], {k: v for k, v in spec.items() if k != "name"}
    else:
        raise ConfigurationError(
            f"scheduler must be a name or an options mapping,"
            f" got {type(spec).__name__}"
        )
    canonical = canonical_scheduler_name(name)

    lock_timeout = options.get("lock_timeout")
    if lock_timeout is not None:
        if canonical != "table_lock":
            raise ConfigurationError(
                f"lock_timeout only applies to the table_lock scheduler,"
                f" not {canonical!r}"
            )
        if (
            isinstance(lock_timeout, bool)
            or not isinstance(lock_timeout, (int, float))
            or lock_timeout <= 0
        ):
            raise ConfigurationError(
                f"lock_timeout must be a positive number of seconds,"
                f" got {lock_timeout!r}"
            )
    conflict_policy = options.get("conflict_policy")
    if conflict_policy is not None:
        if canonical != "mvcc":
            raise ConfigurationError(
                f"conflict_policy only applies to the mvcc scheduler,"
                f" not {canonical!r}"
            )
        if conflict_policy not in CONFLICT_POLICIES:
            raise ConfigurationError(
                f"unknown conflict_policy {conflict_policy!r}"
                f" (expected one of: {', '.join(CONFLICT_POLICIES)})"
            )

    if canonical == "passthrough":
        return PassThroughScheduler()
    if canonical == "optimistic":
        return OptimisticTransactionLevelScheduler()
    if canonical == "pessimistic":
        return PessimisticTransactionLevelScheduler()
    if canonical == "table_lock":
        return TableLockScheduler(
            lock_timeout=float(lock_timeout) if lock_timeout is not None else None
        )
    return MVCCScheduler(
        conflict_policy=conflict_policy or "first_committer_wins"
    )


def describe_scheduler(spec: SchedulerSpec) -> str:
    """One human-readable line for check-config output (validates the spec)."""
    if isinstance(spec, str):
        return canonical_scheduler_name(spec)
    build_scheduler(spec)  # full validation
    name = canonical_scheduler_name(spec["name"])
    options = ", ".join(
        f"{key}: {spec[key]}"
        for key in sorted(spec)
        if key != "name" and spec[key] is not None
    )
    return f"{name} ({options})" if options else name
