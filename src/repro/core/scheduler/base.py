"""Scheduler implementations.

The contract is small: the request manager calls :meth:`schedule_read` /
:meth:`schedule_write` before handing the request to the cache / load
balancer and calls :meth:`SchedulerTicket.release` when the operation has
completed on every backend involved.  Write tickets carry a monotonically
increasing *write order* identifier; because the ticket is acquired while
holding the scheduler's write mutex, ticket order equals execution order on
every backend — the total order property of §2.4.1.

Every scheduler also records how long callers waited inside the acquire
hooks (count of blocked acquisitions, total and maximum wait) so the
contention ablation can compare variants without instrumenting callers.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.core.request import AbstractRequest

#: an acquire slower than this is counted as "waited" — an uncontended
#: lock acquisition is microseconds, a parked thread is milliseconds
_WAIT_THRESHOLD_SECONDS = 0.001


class SchedulerTicket:
    """Handle returned by the scheduler; must be released after execution."""

    def __init__(self, scheduler: "AbstractScheduler", request: AbstractRequest, order: int):
        self._scheduler = scheduler
        self.request = request
        #: global ordering number; meaningful for writes/commits/aborts
        self.order = order
        #: committed version observed at scheduling time (MVCC variant only)
        self.snapshot_version: Optional[int] = None
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._scheduler._release(self)

    def __enter__(self) -> "SchedulerTicket":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class _WaitStats:
    """Count / total / max of acquire wait times, updated under a caller lock."""

    __slots__ = ("count", "total_seconds", "max_seconds")

    def __init__(self):
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, waited: float) -> None:
        if waited >= _WAIT_THRESHOLD_SECONDS:
            self.count += 1
        self.total_seconds += waited
        if waited > self.max_seconds:
            self.max_seconds = waited

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "max_seconds": round(self.max_seconds, 6),
        }


class AbstractScheduler:
    """Base scheduler: bookkeeping shared by every implementation."""

    def __init__(self):
        self._order_counter = itertools.count(1)
        self._order_lock = threading.Lock()
        self.reads_scheduled = 0
        self.writes_scheduled = 0
        self.pending_writes = 0
        self.write_barriers = 0
        self._read_wait = _WaitStats()
        self._write_wait = _WaitStats()

    # -- public API -----------------------------------------------------------

    def schedule_read(self, request: AbstractRequest) -> SchedulerTicket:
        started = time.perf_counter()
        self._acquire_read(request)
        waited = time.perf_counter() - started
        with self._order_lock:
            self.reads_scheduled += 1
            self._read_wait.record(waited)
        return SchedulerTicket(self, request, order=0)

    def schedule_write(self, request: AbstractRequest) -> SchedulerTicket:
        """Schedule a write / commit / abort.  Blocks until it may proceed."""
        started = time.perf_counter()
        self._acquire_write(request)
        waited = time.perf_counter() - started
        with self._order_lock:
            self.writes_scheduled += 1
            self.pending_writes += 1
            self._write_wait.record(waited)
            order = next(self._order_counter)
        return SchedulerTicket(self, request, order=order)

    @contextmanager
    def write_barrier(self) -> Iterator[None]:
        """Briefly block new writes/commits/aborts while the context is held.

        Used by backend re-integration (:mod:`repro.core.failover`): the
        resynchronizer replays the recovery-log tail online, then acquires
        this barrier to catch up the last entries and re-enable the backend
        with no write racing the switch.  Reads are not blocked.  The
        barrier takes the same mutual-exclusion path as a write, so it
        waits for the in-flight write (if any) and excludes new ones.
        """
        started = time.perf_counter()
        self._acquire_write(None)
        waited = time.perf_counter() - started
        with self._order_lock:
            self.write_barriers += 1
            self._write_wait.record(waited)
        try:
            yield
        finally:
            self._release_write(None)

    # -- hooks ------------------------------------------------------------------

    def _acquire_read(self, request: AbstractRequest) -> None:  # pragma: no cover
        raise NotImplementedError

    def _acquire_write(self, request: AbstractRequest) -> None:  # pragma: no cover
        raise NotImplementedError

    def _release_read(self, request: AbstractRequest) -> None:  # pragma: no cover
        raise NotImplementedError

    def _release_write(self, request: AbstractRequest) -> None:  # pragma: no cover
        raise NotImplementedError

    def _release(self, ticket: SchedulerTicket) -> None:
        if ticket.order:
            with self._order_lock:
                self.pending_writes = max(0, self.pending_writes - 1)
            self._release_write(ticket.request)
        else:
            self._release_read(ticket.request)

    # -- statistics ----------------------------------------------------------------

    def statistics(self) -> dict:
        with self._order_lock:
            return {
                "scheduler": type(self).__name__,
                "reads_scheduled": self.reads_scheduled,
                "writes_scheduled": self.writes_scheduled,
                "pending_writes": self.pending_writes,
                "write_barriers": self.write_barriers,
                "read_wait": self._read_wait.as_dict(),
                "write_wait": self._write_wait.as_dict(),
            }


class PassThroughScheduler(AbstractScheduler):
    """No synchronisation at all: suitable for a single backend.

    With one backend there is nothing to keep consistent across replicas,
    so the backend's own concurrency control is enough.
    """

    def _acquire_read(self, request: AbstractRequest) -> None:
        return None

    def _acquire_write(self, request: AbstractRequest) -> None:
        return None

    def _release_read(self, request: AbstractRequest) -> None:
        return None

    def _release_write(self, request: AbstractRequest) -> None:
        return None


class OptimisticTransactionLevelScheduler(AbstractScheduler):
    """Writes are mutually exclusive; reads proceed concurrently with anything.

    This matches §2.4.1: "At any given time only a single update, commit or
    abort is in progress on a particular virtual database.  Multiple reads
    from different transactions can be going on at the same time."
    """

    def __init__(self):
        super().__init__()
        self._write_mutex = threading.Lock()

    def _acquire_read(self, request: AbstractRequest) -> None:
        return None

    def _acquire_write(self, request: AbstractRequest) -> None:
        self._write_mutex.acquire()

    def _release_read(self, request: AbstractRequest) -> None:
        return None

    def _release_write(self, request: AbstractRequest) -> None:
        self._write_mutex.release()


class PessimisticTransactionLevelScheduler(AbstractScheduler):
    """Writes are exclusive with respect to both reads and other writes.

    Reads use a shared lock; a write drains readers before executing.  This
    provides the strongest scheduling guarantee (no read ever observes a
    half-propagated write on any backend) at the cost of read concurrency.

    Writers take preference: once a writer is waiting, new readers queue
    behind it instead of piling onto the shared lock — otherwise a
    continuous reader stream keeps ``_active_readers > 0`` forever and the
    writer starves.
    """

    def __init__(self):
        super().__init__()
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._waiting_writers = 0

    def _acquire_read(self, request: AbstractRequest) -> None:
        with self._condition:
            while self._writer_active or self._waiting_writers:
                self._condition.wait()
            self._active_readers += 1

    def _acquire_write(self, request: AbstractRequest) -> None:
        with self._condition:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers > 0:
                    self._condition.wait()
                self._writer_active = True
            finally:
                self._waiting_writers -= 1
                if not self._writer_active:
                    # an interrupted wait must not leave readers queued
                    # behind a writer that will never run
                    self._condition.notify_all()

    def _release_read(self, request: AbstractRequest) -> None:
        with self._condition:
            self._active_readers = max(0, self._active_readers - 1)
            self._condition.notify_all()

    def _release_write(self, request: AbstractRequest) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()
