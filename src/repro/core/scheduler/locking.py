"""Table-level locking scheduler: shared/exclusive locks per parsed table.

The coarse §2.4.1 schedulers serialize *all* writes on one virtual-database
mutex.  :class:`TableLockScheduler` narrows the conflict window to the
tables a request actually touches (the request parser fills
``request.tables``):

* a read takes a **shared** lock on each of its tables;
* a write takes a shared lock on the global key ``"*"`` and then an
  **exclusive** lock on each of its tables — writes on disjoint tables
  proceed concurrently, writes on the same table are serialized (so every
  backend still applies conflicting writes in the same order);
* a commit/abort (no parsed tables) takes only the shared global lock;
* the :meth:`~AbstractScheduler.write_barrier` takes the global key
  **exclusively**: it drains every in-flight write and excludes new ones,
  while reads — which never touch the global key — keep flowing.

Deadlock freedom comes from ordered acquisition: every caller locks the
global key first and then its tables in sorted name order, so no cycle of
waiters can form.  Lock keys are recomputed from the request at release
time, which keeps the scheduler stateless about in-flight tickets.

A waiting exclusive locker blocks *new* shared lockers on its key (writer
preference per table, and the mechanism by which a pending barrier stops
admitting writes).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.core.request import AbstractRequest
from repro.core.scheduler.base import AbstractScheduler
from repro.errors import LockTimeoutError

#: the pseudo-table every write shares and the barrier takes exclusively;
#: sorts before any real (alphanumeric) table name, preserving ordered
#: acquisition
_GLOBAL = "*"

#: (lock key, exclusive?) pairs, in acquisition order
_LockPlan = Tuple[Tuple[str, bool], ...]


class _LockEntry:
    """Reader/writer state of one lock key."""

    __slots__ = ("readers", "writer", "waiting_exclusive")

    def __init__(self):
        self.readers = 0
        self.writer = False
        self.waiting_exclusive = 0

    @property
    def idle(self) -> bool:
        return not self.readers and not self.writer and not self.waiting_exclusive


class TableLockScheduler(AbstractScheduler):
    """Shared/exclusive table locks with deadlock-free ordered acquisition."""

    def __init__(self, lock_timeout: Optional[float] = None):
        super().__init__()
        if lock_timeout is not None and lock_timeout <= 0:
            raise ValueError(f"lock_timeout must be positive, got {lock_timeout!r}")
        #: seconds one request may wait for its whole lock plan (None = forever)
        self.lock_timeout = lock_timeout
        self._condition = threading.Condition()
        self._locks: Dict[str, _LockEntry] = {}
        self.lock_waits = 0
        self.lock_timeouts = 0

    # -- lock plans --------------------------------------------------------------

    @staticmethod
    def _tables(request: AbstractRequest) -> Sequence[str]:
        return sorted({table.lower() for table in (request.tables or ())})

    def _read_plan(self, request: AbstractRequest) -> _LockPlan:
        return tuple((table, False) for table in self._tables(request))

    def _write_plan(self, request: Optional[AbstractRequest]) -> _LockPlan:
        if request is None:  # write barrier
            return ((_GLOBAL, True),)
        tables = self._tables(request)
        if not tables:  # commit/abort or unparsed write
            return ((_GLOBAL, False),)
        return ((_GLOBAL, False),) + tuple((table, True) for table in tables)

    # -- acquisition -------------------------------------------------------------

    def _acquire_plan(self, plan: _LockPlan) -> None:
        if not plan:
            return
        deadline = (
            None if self.lock_timeout is None else time.monotonic() + self.lock_timeout
        )
        blocked = False
        acquired = []
        with self._condition:
            try:
                for key, exclusive in plan:
                    entry = self._locks.setdefault(key, _LockEntry())
                    if exclusive:
                        entry.waiting_exclusive += 1
                        try:
                            while entry.writer or entry.readers:
                                blocked = True
                                self._wait(deadline, key)
                        finally:
                            entry.waiting_exclusive -= 1
                        entry.writer = True
                    else:
                        while entry.writer or entry.waiting_exclusive:
                            blocked = True
                            self._wait(deadline, key)
                        entry.readers += 1
                    acquired.append((key, exclusive))
            except Exception:
                self._release_held(acquired)
                self._condition.notify_all()
                raise
            if blocked:
                self.lock_waits += 1

    def _wait(self, deadline: Optional[float], key: str) -> None:
        """One bounded wait on the condition; raises on a passed deadline."""
        if deadline is None:
            self._condition.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._condition.wait(timeout=remaining):
            if deadline - time.monotonic() <= 0:
                self.lock_timeouts += 1
                raise LockTimeoutError(
                    f"table lock on {key!r} not acquired within"
                    f" {self.lock_timeout}s"
                )

    def _release_plan(self, plan: _LockPlan) -> None:
        if not plan:
            return
        with self._condition:
            self._release_held(plan)
            self._condition.notify_all()

    def _release_held(self, held) -> None:
        """Release (key, exclusive) pairs; caller holds the condition."""
        for key, exclusive in held:
            entry = self._locks.get(key)
            if entry is None:
                continue
            if exclusive:
                entry.writer = False
            else:
                entry.readers = max(0, entry.readers - 1)
            if entry.idle:
                del self._locks[key]

    # -- scheduler hooks ---------------------------------------------------------

    def _acquire_read(self, request: AbstractRequest) -> None:
        self._acquire_plan(self._read_plan(request))

    def _acquire_write(self, request: Optional[AbstractRequest]) -> None:
        self._acquire_plan(self._write_plan(request))

    def _release_read(self, request: AbstractRequest) -> None:
        self._release_plan(self._read_plan(request))

    def _release_write(self, request: Optional[AbstractRequest]) -> None:
        self._release_plan(self._write_plan(request))

    # -- statistics --------------------------------------------------------------

    def statistics(self) -> dict:
        stats = super().statistics()
        with self._condition:
            stats["table_lock"] = {
                "lock_timeout": self.lock_timeout,
                "lock_waits": self.lock_waits,
                "lock_timeouts": self.lock_timeouts,
                "locked_tables": len(self._locks),
            }
        return stats
