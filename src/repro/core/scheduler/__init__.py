"""Request schedulers (paper §2.4.1).

The scheduler decides when a request may proceed and guarantees that all
backends see updates, commits and aborts in the same order.  Three
implementations are provided, matching the C-JDBC distribution:

* :class:`PassThroughScheduler` — no synchronisation, for single-backend
  virtual databases;
* :class:`OptimisticTransactionLevelScheduler` — writes are serialised with
  respect to each other but reads never block;
* :class:`PessimisticTransactionLevelScheduler` — writes are exclusive even
  with respect to reads (reads wait while a write is in flight).
"""

from repro.core.scheduler.base import (
    AbstractScheduler,
    OptimisticTransactionLevelScheduler,
    PassThroughScheduler,
    PessimisticTransactionLevelScheduler,
    SchedulerTicket,
)

__all__ = [
    "AbstractScheduler",
    "SchedulerTicket",
    "PassThroughScheduler",
    "OptimisticTransactionLevelScheduler",
    "PessimisticTransactionLevelScheduler",
]
