"""Request schedulers (paper §2.4.1).

The scheduler decides when a request may proceed and guarantees that all
backends see updates, commits and aborts in the same order.  Five
implementations are provided — the three matching the C-JDBC distribution
plus two finer-grained variants:

* :class:`PassThroughScheduler` — no synchronisation, for single-backend
  virtual databases;
* :class:`OptimisticTransactionLevelScheduler` — writes are serialised with
  respect to each other but reads never block;
* :class:`PessimisticTransactionLevelScheduler` — writes are exclusive even
  with respect to reads (reads wait while a write is in flight), with
  writer preference so a reader stream cannot starve a writer;
* :class:`TableLockScheduler` — shared/exclusive locks per parsed table
  with deadlock-free ordered acquisition: writes on disjoint tables run
  concurrently, reads block only on tables being written;
* :class:`MVCCScheduler` — snapshot-style: reads never block and are
  stamped with the committed version they logically read at, writes stay
  totally ordered, and first-committer-wins validation aborts conflicting
  transactions with :class:`~repro.errors.SerializationConflictError`.

:func:`build_scheduler` turns the ``scheduler:`` configuration knob (a name
or an options mapping) into an instance.
"""

from repro.core.scheduler.base import (
    AbstractScheduler,
    OptimisticTransactionLevelScheduler,
    PassThroughScheduler,
    PessimisticTransactionLevelScheduler,
    SchedulerTicket,
)
from repro.core.scheduler.factory import (
    SCHEDULER_NAMES,
    build_scheduler,
    canonical_scheduler_name,
    describe_scheduler,
)
from repro.core.scheduler.locking import TableLockScheduler
from repro.core.scheduler.mvcc import CONFLICT_POLICIES, MVCCScheduler

__all__ = [
    "AbstractScheduler",
    "SchedulerTicket",
    "PassThroughScheduler",
    "OptimisticTransactionLevelScheduler",
    "PessimisticTransactionLevelScheduler",
    "TableLockScheduler",
    "MVCCScheduler",
    "CONFLICT_POLICIES",
    "SCHEDULER_NAMES",
    "build_scheduler",
    "canonical_scheduler_name",
    "describe_scheduler",
]
