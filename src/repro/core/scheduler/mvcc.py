"""MVCC-style snapshot scheduler: reads never block, first committer wins.

The middleware cannot version the data itself (rows live in the backends),
but it can keep the *metadata* of snapshot isolation: a committed-version
counter, the version at which each transaction took its snapshot, and the
set of tables each transaction has written.  That is enough to

* stamp every read ticket with the snapshot version it logically reads at
  (``ticket.snapshot_version``) without ever blocking the reader, and
* detect write-write conflicts with first-committer-wins validation: a
  transaction that writes a table committed by someone else *after* this
  transaction's snapshot is aborted with
  :class:`~repro.errors.SerializationConflictError`.

Validation is eager (checked when the conflicting statement is scheduled,
before it reaches any backend) and repeated at commit, mirroring
PostgreSQL's "could not serialize access due to concurrent update".  The
rejected statement performed no work, so the error is retryable: the client
rolls back and re-runs the transaction
(:meth:`repro.core.retry.RetryPolicy.is_retryable`).

Writes stay totally ordered through one mutex — replicas still apply every
update in the same order (§2.4.1) — but the scheduler never makes a read
wait for a write.  Consequently a read may observe a half-propagated write
on a lagging replica; the isolation exerciser documents this honestly in
the scheduler×anomaly matrix.  Classic snapshot-isolation write skew
(disjoint write sets) is admitted by design.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set

from repro.core.request import AbstractRequest, CommitRequest, RollbackRequest
from repro.core.scheduler.base import AbstractScheduler, SchedulerTicket
from repro.errors import SerializationConflictError

#: supported ``conflict_policy`` values: abort the later writer, or only
#: count conflicts without aborting (for measuring conflict rates)
CONFLICT_POLICIES = ("first_committer_wins", "detect_only")


class MVCCScheduler(AbstractScheduler):
    """Snapshot scheduler: non-blocking reads, versioned first-committer-wins."""

    def __init__(self, conflict_policy: str = "first_committer_wins"):
        super().__init__()
        if conflict_policy not in CONFLICT_POLICIES:
            raise ValueError(
                f"unknown conflict_policy {conflict_policy!r}"
                f" (expected one of: {', '.join(CONFLICT_POLICIES)})"
            )
        self.conflict_policy = conflict_policy
        self._write_mutex = threading.Lock()
        self._state = threading.Lock()
        #: bumped once per committed writing transaction / autocommit write
        self.committed_version = 0
        #: table -> committed version of the last write that touched it
        self._table_versions: Dict[str, int] = {}
        #: transaction id -> committed version at its snapshot
        self._txn_start: Dict[int, int] = {}
        #: transaction id -> tables it has (attempted to) write
        self._txn_writes: Dict[int, Set[str]] = {}
        self.conflicts_detected = 0

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _tables(request: AbstractRequest) -> Set[str]:
        return {table.lower() for table in (request.tables or ())}

    def _snapshot(self, transaction_id: Optional[int]) -> int:
        """The version the request logically reads at; stamps new transactions.

        Caller holds ``self._state``.
        """
        if transaction_id is None:
            return self.committed_version
        return self._txn_start.setdefault(transaction_id, self.committed_version)

    def _check_conflicts(self, transaction_id: int, tables: Set[str]) -> None:
        """First-committer-wins: raise if any table moved past the snapshot.

        Caller holds ``self._state``.
        """
        snapshot = self._snapshot(transaction_id)
        for table in sorted(tables):
            committed_at = self._table_versions.get(table, 0)
            if committed_at > snapshot:
                self.conflicts_detected += 1
                if self.conflict_policy == "detect_only":
                    return
                raise SerializationConflictError(
                    f"transaction {transaction_id} (snapshot v{snapshot}) conflicts"
                    f" with a commit to table {table!r} at v{committed_at}:"
                    " first committer wins — roll back and retry"
                )

    # -- scheduler hooks ---------------------------------------------------------

    def schedule_read(self, request: AbstractRequest) -> SchedulerTicket:
        ticket = super().schedule_read(request)
        with self._state:
            ticket.snapshot_version = self._snapshot(request.transaction_id)
        return ticket

    def _acquire_read(self, request: AbstractRequest) -> None:
        return None  # reads never block

    def _acquire_write(self, request: Optional[AbstractRequest]) -> None:
        if request is not None:
            transaction_id = request.transaction_id
            with self._state:
                if transaction_id is not None and not isinstance(
                    request, RollbackRequest
                ):
                    if isinstance(request, CommitRequest):
                        # final validation: tables written before a competing
                        # commit happened are caught here
                        self._check_conflicts(
                            transaction_id, self._txn_writes.get(transaction_id, set())
                        )
                    else:
                        tables = self._tables(request)
                        self._check_conflicts(transaction_id, tables)
                        if tables:
                            self._txn_writes.setdefault(
                                transaction_id, set()
                            ).update(tables)
        self._write_mutex.acquire()

    def _release_read(self, request: AbstractRequest) -> None:
        return None

    def _release_write(self, request: Optional[AbstractRequest]) -> None:
        if request is not None:
            transaction_id = request.transaction_id
            with self._state:
                if transaction_id is None:
                    tables = self._tables(request)
                    if tables:
                        self._commit_tables(tables)
                elif isinstance(request, CommitRequest):
                    written = self._txn_writes.pop(transaction_id, set())
                    self._txn_start.pop(transaction_id, None)
                    if written:
                        self._commit_tables(written)
                elif isinstance(request, RollbackRequest):
                    self._txn_writes.pop(transaction_id, None)
                    self._txn_start.pop(transaction_id, None)
        self._write_mutex.release()

    def _commit_tables(self, tables: Set[str]) -> None:
        """Advance the committed version over ``tables`` (holds ``_state``)."""
        self.committed_version += 1
        for table in tables:
            self._table_versions[table] = self.committed_version

    # -- statistics --------------------------------------------------------------

    def statistics(self) -> dict:
        stats = super().statistics()
        with self._state:
            stats["mvcc"] = {
                "conflict_policy": self.conflict_policy,
                "committed_version": self.committed_version,
                "conflicts_detected": self.conflicts_detected,
                "active_transactions": len(self._txn_start),
            }
        return stats
