"""The C-JDBC client driver (paper §2.3).

"The client application uses a C-JDBC driver that replaces the
database-specific JDBC driver but offers the same interface."  Here the
"same interface" is DB-API 2.0, the Python equivalent: applications written
against :mod:`repro.sql.dbapi` work unchanged when pointed at a virtual
database through this module.

The driver also implements transparent controller failover: it can be given
several controllers hosting the same virtual database (horizontal
scalability) and it re-routes a connection to the next controller when the
current one fails (§2.3, §4.1).  A full result set is materialized on the
controller and handed to the driver, so clients browse results locally.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.core.controller import Controller
from repro.core.request import RequestResult
from repro.core.virtualdb import VirtualDatabase
from repro.errors import (
    CJDBCError,
    ControllerError,
    DatabaseError,
    InterfaceError,
    NoMoreBackendError,
)

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


def connect(
    controllers: Union[str, Controller, Sequence[Controller]],
    database: Optional[str] = None,
    user: str = "",
    password: str = "",
) -> "VirtualConnection":
    """Open a connection to a virtual database.

    ``controllers`` may be a single controller or an ordered list of
    controllers hosting the same (distributed) virtual database; the driver
    uses the first reachable one and transparently fails over to the others.

    A ``cjdbc://ctrl-a,ctrl-b/mydb?user=...&password=...`` URL is also
    accepted: its controller names are resolved through the default
    controller registry (see :mod:`repro.cluster`).
    """
    if isinstance(controllers, str):
        from repro.cluster.facade import connect as facade_connect

        return facade_connect(controllers, database, user, password)
    if isinstance(controllers, Controller):
        controllers = [controllers]
    if not controllers:
        raise InterfaceError("at least one controller is required")
    if database is None:
        raise InterfaceError("a virtual database name is required")
    return VirtualConnection(list(controllers), database, user, password)


class VirtualConnection:
    """A DB-API connection to a virtual database through one or more controllers."""

    def __init__(
        self,
        controllers: List[Controller],
        database: str,
        user: str,
        password: str,
    ):
        self._controllers = controllers
        self.database = database
        self.user = user
        self.password = password
        self._lock = threading.RLock()
        self._closed = False
        self._autocommit = True
        self._transaction_id: Optional[int] = None
        self._controller_index = 0
        self.failovers = 0
        # Validate credentials against the first reachable controller now, the
        # way the JDBC driver authenticates when the connection is opened.
        self._virtual_database().check_credentials(user, password)

    # -- controller selection / failover -------------------------------------------------

    def _virtual_database(self) -> VirtualDatabase:
        """Current controller's virtual database, failing over when needed."""
        with self._lock:
            attempts = 0
            while attempts < len(self._controllers):
                controller = self._controllers[self._controller_index]
                try:
                    return controller.get_virtual_database(self.database)
                except ControllerError:
                    self._controller_index = (self._controller_index + 1) % len(
                        self._controllers
                    )
                    self.failovers += 1
                    attempts += 1
            raise ControllerError(
                f"no controller can serve virtual database {self.database!r}"
            )

    @property
    def current_controller(self) -> Controller:
        with self._lock:
            return self._controllers[self._controller_index]

    # -- DB-API surface ------------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def autocommit(self) -> bool:
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self._check_open()
        value = bool(value)
        if value and self._transaction_id is not None:
            self.commit()
        self._autocommit = value

    def begin(self) -> Optional[int]:
        """Explicitly start a transaction.

        The transaction ends at the next :meth:`commit` or :meth:`rollback`;
        afterwards the connection returns to its ``autocommit`` setting (so a
        ``begin()``/``commit()`` block on an autocommit connection does not
        silently leave every later statement inside implicit transactions —
        which would in particular make them ineligible for the query result
        cache).
        """
        self._check_open()
        with self._lock:
            if self._transaction_id is None:
                self._transaction_id = self._virtual_database().begin(self.user)
            return self._transaction_id

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction_id is None:
                return
            transaction_id, self._transaction_id = self._transaction_id, None
        self._virtual_database().commit(transaction_id, self.user)

    def rollback(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction_id is None:
                return
            transaction_id, self._transaction_id = self._transaction_id, None
        self._virtual_database().rollback(transaction_id, self.user)

    def close(self) -> None:
        if self._closed:
            return
        if self._transaction_id is not None:
            try:
                self.rollback()
            except CJDBCError:
                pass
        self._closed = True

    def cursor(self) -> "VirtualCursor":
        self._check_open()
        return VirtualCursor(self)

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "VirtualCursor":
        cursor = self.cursor()
        cursor.execute(sql, parameters)
        return cursor

    # -- internals ----------------------------------------------------------------------------

    def _ensure_transaction(self) -> Optional[int]:
        with self._lock:
            if self._transaction_id is not None:
                return self._transaction_id
            if self._autocommit:
                return None
            self._transaction_id = self._virtual_database().begin(self.user)
            return self._transaction_id

    def _run(self, sql: str, parameters: Sequence[Any]) -> RequestResult:
        self._check_open()
        transaction_id = self._ensure_transaction()
        last_error: Optional[Exception] = None
        for _attempt in range(len(self._controllers)):
            virtual_database = self._virtual_database()
            try:
                return virtual_database.execute(
                    sql, parameters, login=self.user, transaction_id=transaction_id
                )
            except ControllerError as exc:
                # Controller died mid-request: fail over.  In-flight
                # transactions cannot be transparently migrated (the paper's
                # driver aborts them), so surface an error in that case.
                last_error = exc
                with self._lock:
                    self._controller_index = (self._controller_index + 1) % len(
                        self._controllers
                    )
                    self.failovers += 1
                if transaction_id is not None:
                    self._transaction_id = None
                    raise DatabaseError(
                        "controller failed during a transaction; transaction aborted"
                    ) from exc
        raise DatabaseError(f"all controllers failed: {last_error}")

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> "VirtualConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An already-closed connection must not raise here: commit()/rollback()
        # would throw InterfaceError and mask the exception that is already
        # propagating out of the ``with`` block.
        if self._closed:
            return
        if exc_type is None:
            try:
                self.commit()
            finally:
                self.close()
        else:
            try:
                self.rollback()
            finally:
                self.close()


class VirtualCursor:
    """DB-API cursor over a virtual connection; results are fully materialized."""

    arraysize = 1

    def __init__(self, connection: VirtualConnection):
        self._connection = connection
        self._result: Optional[RequestResult] = None
        self._position = 0
        self._closed = False

    # -- metadata -------------------------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple]]:
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        if self._result.columns:
            return len(self._result.rows)
        return self._result.update_count

    @property
    def columns(self) -> List[str]:
        return list(self._result.columns) if self._result else []

    @property
    def from_cache(self) -> bool:
        """Extension: True when the last result came from the query result cache."""
        return bool(self._result and self._result.from_cache)

    @property
    def backend_name(self) -> Optional[str]:
        """Extension: name of the backend that served the last read."""
        return self._result.backend_name if self._result else None

    # -- execution -------------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "VirtualCursor":
        self._check_open()
        self._result = self._connection._run(sql, tuple(parameters))
        self._position = 0
        return self

    def executemany(self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]) -> "VirtualCursor":
        self._check_open()
        total = 0
        executed = False
        for parameters in seq_of_parameters:
            self.execute(sql, parameters)
            executed = True
            if self._result is not None and self._result.update_count > 0:
                total += self._result.update_count
        if executed and self._result is not None:
            # The last result may be a shared cached RequestResult; report the
            # accumulated count on a private copy instead of mutating it.
            summary = self._result.copy()
            summary.update_count = total
            self._result = summary
        return self

    # -- fetching ---------------------------------------------------------------------------

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._check_has_result()
        if self._position >= len(self._result.rows):
            return None
        row = tuple(self._result.rows[self._position])
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        self._check_has_result()
        count = size if size is not None else self.arraysize
        rows = []
        for _ in range(count):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        self._check_has_result()
        rows = [tuple(row) for row in self._result.rows[self._position :]]
        self._position = len(self._result.rows)
        return rows

    def fetchall_dicts(self) -> List[dict]:
        self._check_has_result()
        return self._result.as_dicts()

    def scalar(self) -> Any:
        self._check_has_result()
        return self._result.scalar()

    # -- misc --------------------------------------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # pragma: no cover - DB-API stub
        return None

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover
        return None

    def close(self) -> None:
        self._closed = True
        self._result = None

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

    def _check_has_result(self) -> None:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement executed yet")
