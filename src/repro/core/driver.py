"""The C-JDBC client driver (paper §2.3).

"The client application uses a C-JDBC driver that replaces the
database-specific JDBC driver but offers the same interface."  Here the
"same interface" is DB-API 2.0, the Python equivalent: applications written
against :mod:`repro.sql.dbapi` work unchanged when pointed at a virtual
database through this module.

Like the JDBC original, the driver implements the *full* statement surface:
besides one-shot ``cursor.execute(sql, params)``,
:meth:`VirtualConnection.prepare` returns a :class:`PreparedStatement` bound
to a controller-side parsed template — repeated executions skip SQL
classification entirely — with JDBC-style ``add_batch``/``execute_batch``
shipping every queued parameter set through the controller pipeline as a
single server-side batch (one scheduler ticket, one recovery-log group, one
cache-invalidation pass, one broadcast task per backend).
``cursor.executemany`` is a thin shim over the same batch path.

The driver also implements transparent controller failover: it can be given
several controllers hosting the same virtual database (horizontal
scalability) and it re-routes a connection to the next controller when the
current one fails (§2.3, §4.1).  A full result set is materialized on the
controller and handed to the driver, so clients browse results locally.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.core.controller import Controller
from repro.core.request import RequestResult
from repro.core.retry import RetryPolicy
from repro.core.virtualdb import VirtualDatabase
from repro.errors import (
    CJDBCError,
    ControllerError,
    DatabaseError,
    InterfaceError,
    NoMoreBackendError,
)

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


def connect(
    controllers: Union[str, Controller, Sequence[Controller]],
    database: Optional[str] = None,
    user: str = "",
    password: str = "",
    retry_policy: Optional[RetryPolicy] = None,
) -> "VirtualConnection":
    """Open a connection to a virtual database.

    ``controllers`` may be a single controller or an ordered list of
    controllers hosting the same (distributed) virtual database; the driver
    uses the first reachable one and transparently fails over to the others.
    ``retry_policy`` tunes that failover (attempts, exponential backoff,
    per-operation timeout); without one, each operation makes a single pass
    over the controller list.

    A ``cjdbc://ctrl-a,ctrl-b/mydb?user=...&password=...`` URL is also
    accepted: its controller names are resolved through the default
    controller registry (see :mod:`repro.cluster`) and ``retry_*`` URL
    options build the policy.
    """
    if isinstance(controllers, str):
        from repro.cluster.facade import connect as facade_connect

        return facade_connect(
            controllers, database, user, password, retry_policy=retry_policy
        )
    if isinstance(controllers, Controller):
        controllers = [controllers]
    if not controllers:
        raise InterfaceError("at least one controller is required")
    if database is None:
        raise InterfaceError("a virtual database name is required")
    return VirtualConnection(
        list(controllers), database, user, password, retry_policy=retry_policy
    )


class VirtualConnection:
    """A DB-API connection to a virtual database through one or more controllers."""

    def __init__(
        self,
        controllers: List[Controller],
        database: str,
        user: str,
        password: str,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self._controllers = controllers
        self.database = database
        self.user = user
        self.password = password
        self._lock = threading.RLock()
        self._closed = False
        self._autocommit = True
        self._transaction_id: Optional[int] = None
        self._controller_index = 0
        self.failovers = 0
        self.retries = 0
        self._retry_policy = retry_policy
        self._retry_rng = retry_policy.rng() if retry_policy is not None else None
        # Validate credentials against the first reachable controller now, the
        # way the JDBC driver authenticates when the connection is opened.
        self._virtual_database().check_credentials(user, password)

    # -- controller selection / failover -------------------------------------------------

    def _virtual_database(self) -> VirtualDatabase:
        """Current controller's virtual database, failing over when needed."""
        with self._lock:
            attempts = 0
            while attempts < len(self._controllers):
                controller = self._controllers[self._controller_index]
                try:
                    return controller.get_virtual_database(self.database)
                except ControllerError:
                    self._controller_index = (self._controller_index + 1) % len(
                        self._controllers
                    )
                    self.failovers += 1
                    attempts += 1
            raise ControllerError(
                f"no controller can serve virtual database {self.database!r}"
            )

    @property
    def current_controller(self) -> Controller:
        with self._lock:
            return self._controllers[self._controller_index]

    # -- DB-API surface ------------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def autocommit(self) -> bool:
        return self._autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        self._check_open()
        value = bool(value)
        if value and self._transaction_id is not None:
            self.commit()
        self._autocommit = value

    def begin(self) -> Optional[int]:
        """Explicitly start a transaction.

        The transaction ends at the next :meth:`commit` or :meth:`rollback`;
        afterwards the connection returns to its ``autocommit`` setting (so a
        ``begin()``/``commit()`` block on an autocommit connection does not
        silently leave every later statement inside implicit transactions —
        which would in particular make them ineligible for the query result
        cache).
        """
        self._check_open()
        with self._lock:
            if self._transaction_id is None:
                self._transaction_id = self._virtual_database().begin(self.user)
            return self._transaction_id

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction_id is None:
                return
            transaction_id, self._transaction_id = self._transaction_id, None
        self._virtual_database().commit(transaction_id, self.user)

    def rollback(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction_id is None:
                return
            transaction_id, self._transaction_id = self._transaction_id, None
        self._virtual_database().rollback(transaction_id, self.user)

    def close(self) -> None:
        if self._closed:
            return
        if self._transaction_id is not None:
            try:
                self.rollback()
            except CJDBCError:
                pass
        self._closed = True
        # Remote controllers hold live sockets; release them.  In-process
        # controllers have no per-connection resources and no such method.
        for controller in self._controllers:
            release = getattr(controller, "release_connection", None)
            if release is not None:
                try:
                    release()
                except CJDBCError:  # pragma: no cover - best-effort cleanup
                    pass

    def cursor(self) -> "VirtualCursor":
        self._check_open()
        return VirtualCursor(self)

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "VirtualCursor":
        cursor = self.cursor()
        cursor.execute(sql, parameters)
        return cursor

    def prepare(self, sql: str) -> "PreparedStatement":
        """Prepare ``sql`` once; the statement re-executes without re-parsing.

        The returned :class:`PreparedStatement` binds a controller-side
        parsed template, offers DB-API cursor semantics for its results, and
        adds JDBC-style batching (``add_batch``/``execute_batch``).
        """
        self._check_open()
        return PreparedStatement(self, sql)

    # -- internals ----------------------------------------------------------------------------

    def _ensure_transaction(self) -> Optional[int]:
        with self._lock:
            if self._transaction_id is not None:
                return self._transaction_id
            if self._autocommit:
                return None
            self._transaction_id = self._virtual_database().begin(self.user)
            return self._transaction_id

    def _execute_with_failover(
        self,
        operation: Callable[[VirtualDatabase], RequestResult],
        transaction_id: Optional[int],
    ) -> RequestResult:
        """Run ``operation`` against the current controller, failing over.

        Shared by one-shot, prepared and batch execution.  A controller dying
        mid-request rotates to the next one; in-flight transactions cannot be
        transparently migrated (the paper's driver aborts them), so those
        surface an error instead of retrying.

        Without a retry policy each operation makes a single pass over the
        controller list.  With one, attempts continue (rotating controllers,
        sleeping the policy's backoff between tries) until an attempt
        succeeds, ``max_attempts`` is exhausted, or the per-operation
        timeout expires — the window a restarting controller needs to come
        back is covered by the later, longer delays.
        """
        if self._retry_policy is None:
            last_error: Optional[Exception] = None
            for _attempt in range(len(self._controllers)):
                virtual_database = self._virtual_database()
                try:
                    return operation(virtual_database)
                except ControllerError as exc:
                    last_error = exc
                    with self._lock:
                        self._controller_index = (self._controller_index + 1) % len(
                            self._controllers
                        )
                        self.failovers += 1
                    if transaction_id is not None:
                        self._transaction_id = None
                        raise DatabaseError(
                            "controller failed during a transaction; transaction aborted"
                        ) from exc
            raise DatabaseError(f"all controllers failed: {last_error}")
        return self._execute_with_retry(operation, transaction_id)

    def _execute_with_retry(
        self,
        operation: Callable[[VirtualDatabase], RequestResult],
        transaction_id: Optional[int],
    ) -> RequestResult:
        policy = self._retry_policy
        deadline = (
            time.monotonic() + policy.operation_timeout
            if policy.operation_timeout is not None
            else None
        )
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.delay(attempt, self._retry_rng)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
                with self._lock:
                    self.retries += 1
            try:
                # controller selection belongs inside the attempt: "no
                # controller can serve" is retryable too — the controllers
                # may be restarting
                virtual_database = self._virtual_database()
                return operation(virtual_database)
            except CJDBCError as exc:
                if not RetryPolicy.is_retryable(exc):
                    raise
                last_error = exc
                with self._lock:
                    self._controller_index = (self._controller_index + 1) % len(
                        self._controllers
                    )
                    self.failovers += 1
                if transaction_id is not None:
                    self._transaction_id = None
                    raise DatabaseError(
                        "controller failed during a transaction; transaction aborted"
                    ) from exc
                if deadline is not None and time.monotonic() >= deadline:
                    raise DatabaseError(
                        f"operation timed out after {policy.operation_timeout}s"
                        f" ({attempt + 1} attempts): {last_error}"
                    ) from exc
        raise DatabaseError(
            f"all {policy.max_attempts} attempts failed: {last_error}"
        )

    def _run(self, sql: str, parameters: Sequence[Any]) -> RequestResult:
        self._check_open()
        stripped = sql.lstrip()
        if stripped[:13].upper() == "EXPLAIN ROUTE":
            # a planning-only request: nothing executes, so it joins no
            # transaction and needs no demarcation
            return self._execute_with_failover(
                lambda virtual_database: self._explain_route(
                    virtual_database, stripped[13:].strip()
                ),
                None,
            )
        transaction_id = self._ensure_transaction()
        return self._execute_with_failover(
            lambda virtual_database: virtual_database.execute(
                sql, parameters, login=self.user, transaction_id=transaction_id
            ),
            transaction_id,
        )

    def _explain_route(self, virtual_database, sql: str) -> RequestResult:
        explain = getattr(virtual_database, "explain_route", None)
        if explain is None:
            raise DatabaseError(
                "EXPLAIN ROUTE is not supported over this connection"
                " (the remote protocol does not expose route planning)"
            )
        if not sql:
            raise DatabaseError("EXPLAIN ROUTE needs a statement to plan")
        return explain(sql, login=self.user)

    def _run_batch(
        self,
        sql: str,
        parameter_sets: Sequence[Sequence[Any]],
        handles: Optional["_HandleCache"] = None,
    ) -> RequestResult:
        """Ship a whole batch through the controller pipeline in one pass.

        ``handles`` carries an already-resolved controller-side template
        (from a prepared statement or a just-classified ``executemany``), so
        the batch never re-parses the SQL; it is resolved here only when no
        caller prepared one.
        """
        self._check_open()
        if not parameter_sets:
            # an empty batch executes nothing and reports zero affected rows
            return RequestResult(update_count=0)
        if handles is None:
            handles = _HandleCache(sql)
        transaction_id = self._ensure_transaction()
        return self._execute_with_failover(
            lambda virtual_database: handles.handle_for(virtual_database).execute_batch(
                parameter_sets, login=self.user, transaction_id=transaction_id
            ),
            transaction_id,
        )

    def _run_prepared(
        self, statement: "PreparedStatement", parameters: Sequence[Any]
    ) -> RequestResult:
        self._check_open()
        transaction_id = self._ensure_transaction()
        return self._execute_with_failover(
            lambda virtual_database: statement._handle_for(virtual_database).execute(
                parameters, login=self.user, transaction_id=transaction_id
            ),
            transaction_id,
        )

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> "VirtualConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An already-closed connection must not raise here: commit()/rollback()
        # would throw InterfaceError and mask the exception that is already
        # propagating out of the ``with`` block.
        if self._closed:
            return
        if exc_type is None:
            try:
                self.commit()
            finally:
                self.close()
        else:
            try:
                self.rollback()
            finally:
                self.close()


class _HandleCache:
    """The controller-side statement handle, re-resolved after failover.

    Parsed templates carry no controller state, but the handle binds the
    request manager of one virtual database; when failover routes the
    connection to a different controller the handle is prepared again there
    (a parsing-cache hit at worst).  One instance serves one driver-side
    statement for its whole lifetime, so steady-state executions pay a single
    identity check.
    """

    __slots__ = ("sql", "handle", "database")

    def __init__(self, sql: str):
        self.sql = sql
        self.handle = None
        self.database = None

    def handle_for(self, virtual_database):
        if self.handle is None or self.database is not virtual_database:
            self.handle = virtual_database.prepare(self.sql)
            self.database = virtual_database
        return self.handle


class VirtualCursor:
    """DB-API cursor over a virtual connection; results are fully materialized."""

    arraysize = 1

    def __init__(self, connection: VirtualConnection):
        self._connection = connection
        self._result: Optional[RequestResult] = None
        self._position = 0
        self._closed = False

    # -- metadata -------------------------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple]]:
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        if self._result.columns:
            return len(self._result.rows)
        return self._result.update_count

    @property
    def columns(self) -> List[str]:
        return list(self._result.columns) if self._result else []

    @property
    def from_cache(self) -> bool:
        """Extension: True when the last result came from the query result cache."""
        return bool(self._result and self._result.from_cache)

    @property
    def backend_name(self) -> Optional[str]:
        """Extension: name of the backend that served the last read."""
        return self._result.backend_name if self._result else None

    # -- execution -------------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "VirtualCursor":
        self._check_open()
        self._result = self._connection._run(sql, tuple(parameters))
        self._position = 0
        return self

    def executemany(self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]) -> "VirtualCursor":
        """Execute ``sql`` for every parameter set.

        INSERT/UPDATE/DELETE statements take the server-side batch path: the
        whole sequence traverses the controller pipeline *once* and the
        cursor reports the aggregate update count.  Other statement shapes
        (SELECT, DDL) keep the legacy per-set loop.  An empty sequence
        executes nothing and leaves a fresh zero-count result — not the
        previous statement's stale result — on the cursor.
        """
        self._check_open()
        parameter_sets = [tuple(parameters) for parameters in seq_of_parameters]
        if not parameter_sets:
            self._result = RequestResult(update_count=0)
            self._position = 0
            return self
        handles = _HandleCache(sql)
        if handles.handle_for(self._connection._virtual_database()).is_write:
            # hand the resolved template along: the batch run re-parses
            # nothing (and re-prepares only across a failover)
            self._result = self._connection._run_batch(sql, parameter_sets, handles)
            self._position = 0
            return self
        total = 0
        for parameters in parameter_sets:
            self.execute(sql, parameters)
            if self._result is not None and self._result.update_count > 0:
                total += self._result.update_count
        if self._result is not None:
            # The last result may be a shared cached RequestResult; report the
            # accumulated count on a private copy instead of mutating it.
            summary = self._result.copy()
            summary.update_count = total
            self._result = summary
        return self

    # -- fetching ---------------------------------------------------------------------------

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._check_has_result()
        if self._position >= len(self._result.rows):
            return None
        row = tuple(self._result.rows[self._position])
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        self._check_has_result()
        count = size if size is not None else self.arraysize
        rows = []
        for _ in range(count):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        self._check_has_result()
        rows = [tuple(row) for row in self._result.rows[self._position :]]
        self._position = len(self._result.rows)
        return rows

    def fetchall_dicts(self) -> List[dict]:
        self._check_has_result()
        return self._result.as_dicts()

    def scalar(self) -> Any:
        self._check_has_result()
        return self._result.scalar()

    # -- misc --------------------------------------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # pragma: no cover - DB-API stub
        return None

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover
        return None

    def close(self) -> None:
        self._closed = True
        self._result = None

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

    def _check_has_result(self) -> None:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement executed yet")


class PreparedStatement(VirtualCursor):
    """A reusable statement handle bound to one SQL template (paper §2.3).

    The JDBC driver's ``PreparedStatement``, ported to DB-API idiom: the SQL
    is parsed (classified, tables extracted) once on the controller, and
    every later execution instantiates a request straight from that template.
    The statement *is* a cursor — ``fetchall``, ``rowcount``, ``description``
    and iteration work on its last result — plus JDBC-style batching:

    >>> statement = connection.prepare("INSERT INTO t (a, b) VALUES (?, ?)")
    >>> statement.execute((1, "x"))              # one row, one pipeline pass
    >>> for row in rows:
    ...     statement.add_batch(row)
    >>> statement.execute_batch()                # N rows, ONE pipeline pass
    >>> statement.rowcount                       # aggregate update count

    The controller-side handle is re-prepared transparently after a
    controller failover (templates carry no controller state).
    """

    def __init__(self, connection: VirtualConnection, sql: str):
        super().__init__(connection)
        self.sql = sql
        self._batch: List[Tuple[Any, ...]] = []
        self._handles = _HandleCache(sql)
        # parse eagerly so malformed SQL fails at prepare() time, like JDBC
        self._handle_for(connection._virtual_database())

    def _handle_for(self, virtual_database):
        """The controller-side handle, re-prepared after a failover."""
        return self._handles.handle_for(virtual_database)

    # -- statement surface -------------------------------------------------------------

    @property
    def is_write(self) -> bool:
        """True when the template is an INSERT/UPDATE/DELETE (batchable)."""
        return self._handles.handle.is_write

    @property
    def is_read_only(self) -> bool:
        return self._handles.handle.is_read_only

    def execute(self, parameters: Sequence[Any] = ()) -> "PreparedStatement":  # type: ignore[override]
        """Execute the prepared template with one parameter set."""
        self._check_open()
        self._result = self._connection._run_prepared(self, tuple(parameters))
        self._position = 0
        return self

    def executemany(self, seq_of_parameters: Sequence[Sequence[Any]]) -> "PreparedStatement":  # type: ignore[override]
        """DB-API spelling of ``add_batch`` + ``execute_batch``."""
        for parameters in seq_of_parameters:
            self.add_batch(parameters)
        return self.execute_batch()

    # -- batching ----------------------------------------------------------------------

    def add_batch(self, parameters: Sequence[Any] = ()) -> "PreparedStatement":
        """Queue one parameter set for the next :meth:`execute_batch`."""
        self._check_open()
        self._handles.handle.template.require_batchable(InterfaceError)
        self._batch.append(tuple(parameters))
        return self

    @property
    def batch_size(self) -> int:
        """Parameter sets queued for the next :meth:`execute_batch`."""
        return len(self._batch)

    def clear_batch(self) -> None:
        """Drop every queued parameter set without executing."""
        self._batch.clear()

    def execute_batch(self) -> "PreparedStatement":
        """Ship every queued parameter set through the pipeline as one batch.

        The queue is consumed whatever the outcome (JDBC ``executeBatch``
        semantics); an empty queue executes nothing and reports an update
        count of zero.
        """
        self._check_open()
        parameter_sets, self._batch = self._batch, []
        # through the bound template: the batch never re-classifies the SQL
        self._result = self._connection._run_batch(self.sql, parameter_sets, self._handles)
        self._position = 0
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        text = self.sql if len(self.sql) <= 60 else self.sql[:57] + "..."
        return f"PreparedStatement({text!r}, queued={len(self._batch)})"
