"""Deterministic fault injection for database backends.

C-JDBC's headline claim is availability, not raw speed: a backend may fail
mid-write, be disabled, and later be re-integrated from the recovery log
while the cluster keeps serving traffic (paper §2.4.1, §3).  Exercising
that story needs *controllable* failures.  A :class:`FaultInjector` wraps a
:class:`repro.core.backend.DatabaseBackend`'s connection layer: every
operation the backend is about to run on one of its native connections
(statement execute, batch, begin/commit/rollback) first passes through the
injector, which may delay it, fail it, or crash the whole backend according
to armed :class:`FaultRule` schedules.

Everything is seeded and deterministic: probabilistic rules draw from a
``random.Random(seed)`` owned by the injector, and ``after_n_ops`` triggers
count operations exactly, so a chaos scenario replays identically for a
given seed (the HISTEX-style reproducibility requirement).

Fault kinds:

* ``latency`` — sleep ``latency_ms`` before the operation proceeds;
* ``error``   — raise a transient :class:`~repro.errors.OperationalError`
  (the operation does *not* reach the backend);
* ``crash``   — put the backend in a crashed state: this operation and every
  later one fails until :meth:`FaultInjector.recover` is called;
* ``hang``    — sleep ``latency_ms`` and then proceed (hang-then-recover: the
  operation eventually succeeds, modelling a stalled-but-alive backend);
* ``disconnect`` — raise :class:`ConnectionDropError`.  Meaningful on the
  network front-end (:class:`repro.net.server.ControllerServer` consults an
  injector before dispatching each client frame and severs the client socket
  when this fires); on a backend injector it behaves like a transient error.

Triggers (combinable; a rule fires when *all* its configured triggers
agree):

* ``after_n_ops=N`` — fire on the Nth matching operation seen by the rule
  (and on every later one, unless ``one_shot``);
* ``probability=p`` — fire with probability ``p`` per operation, drawn from
  the injector's seeded RNG;
* ``one_shot=True`` — disarm the rule after its first firing;
* ``match_sql`` — only consider operations whose SQL contains the substring;
* ``operations`` — restrict to a subset of ``execute``/``executemany``/
  ``begin``/``commit``/``rollback``.

Rules are armed and disarmed at runtime (admin console ``fault`` command,
:meth:`repro.cluster.facade.Cluster.fault_injector`), or declared in a
cluster descriptor's per-backend ``faults:`` section (validated by
``check-config``).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, OperationalError


#: every operation category the injector can intercept
FAULT_OPERATIONS = ("execute", "executemany", "begin", "commit", "rollback")

#: supported fault kinds
FAULT_KINDS = ("latency", "error", "crash", "hang", "disconnect")


class InjectedFaultError(OperationalError):
    """Transient backend error raised by an ``error`` fault rule."""


class ConnectionDropError(OperationalError):
    """Raised by a ``disconnect`` fault rule: sever the client connection.

    The network front-end catches this and closes the client socket without
    an error frame — from the driver's point of view the controller just
    died mid-session, which is exactly what the chaos suite wants to test.
    """


class BackendCrashedError(OperationalError):
    """Raised for every operation while a backend is in the crashed state."""


@dataclass
class FaultRule:
    """One armed fault: a kind plus the schedule deciding when it fires."""

    kind: str
    #: fire starting at the Nth matching operation (1-based); None = always
    after_n_ops: Optional[int] = None
    #: per-operation firing probability from the injector's seeded RNG
    probability: Optional[float] = None
    #: disarm the rule after its first firing
    one_shot: bool = False
    #: sleep duration for ``latency`` / ``hang`` faults
    latency_ms: float = 0.0
    #: only operations whose SQL contains this substring are considered
    match_sql: Optional[str] = None
    #: operation categories this rule applies to
    operations: Tuple[str, ...] = FAULT_OPERATIONS
    #: free-text label surfaced in status output
    label: str = ""
    # internal counters (per rule, guarded by the injector's lock)
    seen_ops: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)
    armed: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (kinds: {', '.join(FAULT_KINDS)})"
            )
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability!r}"
            )
        if self.after_n_ops is not None and self.after_n_ops < 1:
            raise ConfigurationError(
                f"after_n_ops must be >= 1, got {self.after_n_ops!r}"
            )
        if self.latency_ms < 0:
            raise ConfigurationError(f"latency_ms must be >= 0, got {self.latency_ms!r}")
        unknown = sorted(set(self.operations) - set(FAULT_OPERATIONS))
        if unknown:
            raise ConfigurationError(
                f"unknown fault operation{'s' if len(unknown) > 1 else ''}"
                f" {', '.join(map(repr, unknown))}"
                f" (operations: {', '.join(FAULT_OPERATIONS)})"
            )
        self.operations = tuple(self.operations)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "after_n_ops": self.after_n_ops,
            "probability": self.probability,
            "one_shot": self.one_shot,
            "latency_ms": self.latency_ms,
            "match_sql": self.match_sql,
            "operations": list(self.operations),
            "seen_ops": self.seen_ops,
            "fired": self.fired,
            "armed": self.armed,
        }


class FaultInjector:
    """Seeded, deterministic fault source for one backend's connection layer.

    The backend calls :meth:`invoke` immediately before running an operation
    on one of its native connections; the injector evaluates every armed
    rule in arming order and applies the first one that fires.  With no
    armed rules and no crash state the call is a cheap early return, so an
    installed-but-idle injector costs nothing measurable on the hot path.
    """

    def __init__(self, seed: int = 0, clock_sleep=time.sleep):
        self.seed = seed
        self._random = Random(seed)
        self._sleep = clock_sleep
        self._lock = threading.Lock()
        self._rules: List[FaultRule] = []
        self._rule_ids = itertools.count(1)
        self._rules_by_id: Dict[int, FaultRule] = {}
        self._crashed = False
        self._crash_reason = ""
        # statistics
        self.operations_seen = 0
        self.faults_injected = 0
        self.injected_by_kind: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # -- arming / disarming ----------------------------------------------------------

    def add_rule(self, rule: FaultRule) -> int:
        """Arm a rule; returns an id usable with :meth:`remove_rule`."""
        with self._lock:
            rule_id = next(self._rule_ids)
            self._rules.append(rule)
            self._rules_by_id[rule_id] = rule
        return rule_id

    def inject(self, kind: str, **options) -> int:
        """Shorthand: build and arm a :class:`FaultRule` in one call."""
        return self.add_rule(FaultRule(kind=kind, **options))

    def remove_rule(self, rule_id: int) -> None:
        with self._lock:
            rule = self._rules_by_id.pop(rule_id, None)
            if rule is not None and rule in self._rules:
                self._rules.remove(rule)

    def clear(self) -> None:
        """Disarm every rule (the crash state, if any, stays until recover)."""
        with self._lock:
            self._rules.clear()
            self._rules_by_id.clear()

    def crash(self, reason: str = "injected crash") -> None:
        """Hard-crash the backend immediately: every later operation fails."""
        with self._lock:
            self._crashed = True
            self._crash_reason = reason

    def recover(self) -> None:
        """Clear the crashed state so operations reach the backend again."""
        with self._lock:
            self._crashed = False
            self._crash_reason = ""

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def rules(self) -> List[FaultRule]:
        with self._lock:
            return list(self._rules)

    # -- the injection point -----------------------------------------------------------

    def invoke(self, operation: str, sql: str = "") -> None:
        """Called by the backend right before an operation hits a connection.

        Raises to fail the operation, sleeps to delay it, or returns to let
        it proceed untouched.
        """
        # unlocked fast path: no crash, no rules -> nothing can fire
        if not self._crashed and not self._rules:
            return
        fire: Optional[FaultRule] = None
        with self._lock:
            self.operations_seen += 1
            if self._crashed:
                self.faults_injected += 1
                self.injected_by_kind["crash"] += 1
                raise BackendCrashedError(self._crash_reason)
            for rule in self._rules:
                if not rule.armed or operation not in rule.operations:
                    continue
                if rule.match_sql is not None and rule.match_sql not in sql:
                    continue
                rule.seen_ops += 1
                if rule.after_n_ops is not None and rule.seen_ops < rule.after_n_ops:
                    continue
                if rule.probability is not None and (
                    self._random.random() >= rule.probability
                ):
                    continue
                rule.fired += 1
                if rule.one_shot:
                    rule.armed = False
                self.faults_injected += 1
                self.injected_by_kind[rule.kind] += 1
                if rule.kind == "crash":
                    # a crash is a state transition, not a repeating event:
                    # the rule disarms itself so recover() actually recovers
                    rule.armed = False
                    self._crashed = True
                    self._crash_reason = (
                        rule.label or f"injected crash ({rule.fired} fired)"
                    )
                fire = rule
                break
        if fire is None:
            return
        if fire.kind == "crash":
            raise BackendCrashedError(self._crash_reason or "injected crash")
        if fire.kind == "error":
            raise InjectedFaultError(
                fire.label or "injected transient error"
            )
        if fire.kind == "disconnect":
            raise ConnectionDropError(
                fire.label or "injected connection drop"
            )
        # latency and hang both sleep, then let the operation proceed;
        # the sleep happens outside the lock so concurrent operations on
        # other connections are not serialized by the injector
        if fire.latency_ms > 0:
            self._sleep(fire.latency_ms / 1000.0)

    # -- monitoring -----------------------------------------------------------------------

    def statistics(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "crashed": self._crashed,
                "operations_seen": self.operations_seen,
                "faults_injected": self.faults_injected,
                "injected_by_kind": dict(self.injected_by_kind),
                "rules": [rule.as_dict() for rule in self._rules],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else f"{len(self._rules)} rules"
        return f"FaultInjector(seed={self.seed}, {state})"


# ---------------------------------------------------------------------------
# descriptor `faults:` section
# ---------------------------------------------------------------------------

_FAULTS_KEYS = {"seed", "rules"}
_RULE_KEYS = {
    "kind",
    "after_n_ops",
    "probability",
    "one_shot",
    "latency_ms",
    "match_sql",
    "operations",
    "label",
}


def parse_faults_section(section, where: str) -> dict:
    """Validate one backend's ``faults:`` descriptor section.

    Returns a normalized ``{"seed": int, "rules": [rule-mapping, ...]}``
    document (plain data, so descriptors stay serializable); use
    :func:`build_fault_injector` to materialize it.  Raises
    :class:`~repro.errors.ConfigurationError` naming ``where`` for every
    problem, matching the descriptor validator's error style.
    """
    if not isinstance(section, dict):
        raise ConfigurationError(
            f"{where}: expected a mapping, got {type(section).__name__}"
        )
    unknown = sorted(set(section) - _FAULTS_KEYS)
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key{'s' if len(unknown) > 1 else ''}"
            f" {', '.join(map(repr, unknown))}"
            f" (expected one of: {', '.join(sorted(_FAULTS_KEYS))})"
        )
    seed = section.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ConfigurationError(f"{where}.seed: expected an integer, got {seed!r}")
    rules = section.get("rules", [])
    if not isinstance(rules, (list, tuple)):
        raise ConfigurationError(
            f"{where}.rules: expected a list, got {type(rules).__name__}"
        )
    normalized = []
    for index, entry in enumerate(rules):
        rule_where = f"{where}.rules[{index}]"
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"{rule_where}: expected a mapping, got {type(entry).__name__}"
            )
        unknown = sorted(set(entry) - _RULE_KEYS)
        if unknown:
            raise ConfigurationError(
                f"{rule_where}: unknown key{'s' if len(unknown) > 1 else ''}"
                f" {', '.join(map(repr, unknown))}"
                f" (expected one of: {', '.join(sorted(_RULE_KEYS))})"
            )
        if "kind" not in entry:
            raise ConfigurationError(f"{rule_where}: missing required key 'kind'")
        if "operations" in entry:
            operations = entry["operations"]
            if not isinstance(operations, (list, tuple)) or any(
                not isinstance(op, str) for op in operations
            ):
                raise ConfigurationError(
                    f"{rule_where}.operations: expected a list of operation names"
                )
        try:
            FaultRule(**_rule_options(entry))  # constructing validates everything
        except TypeError as exc:
            raise ConfigurationError(f"{rule_where}: {exc}") from exc
        except ConfigurationError as exc:
            raise ConfigurationError(f"{rule_where}: {exc}") from exc
        normalized.append(dict(entry))
    return {"seed": seed, "rules": normalized}


def _rule_options(entry: dict) -> dict:
    """Normalize a serialized rule mapping into FaultRule keyword arguments."""
    options = dict(entry)
    if "operations" in options:
        options["operations"] = tuple(options["operations"])
    for key in ("probability", "latency_ms"):
        value = options.get(key)
        if isinstance(value, int) and not isinstance(value, bool):
            options[key] = float(value)
    return options


def build_fault_injector(document: Optional[dict]) -> Optional[FaultInjector]:
    """Materialize a :class:`FaultInjector` from a validated ``faults:`` doc."""
    if not document:
        return None
    injector = FaultInjector(seed=document.get("seed", 0))
    for entry in document.get("rules", ()):
        injector.add_rule(FaultRule(**_rule_options(entry)))
    return injector


__all__ = [
    "FAULT_KINDS",
    "FAULT_OPERATIONS",
    "BackendCrashedError",
    "ConnectionDropError",
    "FaultInjector",
    "FaultRule",
    "InjectedFaultError",
    "build_fault_injector",
    "parse_faults_section",
]
