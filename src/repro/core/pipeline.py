"""Composable request execution pipeline (the controller's middleware stack).

The paper describes the C-JDBC controller as a stack of cooperating stages —
scheduler, query result cache, load balancer, recovery log (§2.4, Figure 1).
This module makes that stack *explicit*: every client request flows through
an ordered chain of :class:`Stage` objects as a :class:`RequestContext`, and
cross-cutting concerns (tracing, metrics, slow-query logging, rate limiting)
attach as :class:`Interceptor` objects that wrap the whole chain with
before/after hooks, observe the context, or short-circuit execution.

Stage order (a stage that does not apply to a request category is a no-op)::

    classify ─ authenticate ─ schedule ─ cache-lookup ─ transaction
        ─ recovery-log ─ cache-invalidate ─ plan ─ load-balance

* **classify** derives the request category (read/write/batch/begin/
  commit/rollback) and validates transaction demarcation;
* **authenticate** resolves the virtual login against the authentication
  manager when one is attached to the pipeline;
* **schedule** acquires the scheduler ticket appropriate for the category
  and *guarantees* its release on every exit path (success, short-circuit
  below it, or exception);
* **cache-lookup** serves cacheable reads from the result cache
  (short-circuiting the rest of the chain on a hit) and stores the result
  on a miss;
* **transaction** allocates/derives the transaction id for ``BEGIN`` and
  pops the controller-side transaction context for ``COMMIT``/``ROLLBACK``;
* **recovery-log** records writes and demarcation before they reach any
  backend, so recovery can replay them;
* **cache-invalidate** runs result-cache invalidation after a successful
  write;
* **plan** asks the query planner for the request's
  :class:`~repro.planner.plan.RoutePlan` (template-cached, so repeated
  statement shapes skip planning);
* **load-balance** is the terminal stage: it executes the route plan — one
  backend for reads (scatter-gather for multi-table reads over disjoint
  RAIDb-2 partitions), broadcast for writes — or broadcasts demarcation to
  the participating backends.

The chain is *compiled once* — each stage contributes a closure wrapping the
next — so steady-state execution allocates nothing beyond the context
object, keeping pipeline overhead within a few percent of the previous
hard-wired code path (measured by ``bench-hotpath``'s ``pipeline_overhead``
ablation).

Interceptors are declaratively configurable: a cluster descriptor's
``interceptors:`` section names built-ins from :data:`BUILTIN_INTERCEPTORS`
(``tracing``, ``slow_query_log``, ``metrics``, ``rate_limit``) with their
options; :func:`build_interceptor` validates names and options so
``check-config`` can reject typos before a cluster boots.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.request import (
    AbstractRequest,
    BatchWriteRequest,
    BeginRequest,
    CommitRequest,
    DDLRequest,
    RequestResult,
    RollbackRequest,
    RequestType,
    SelectRequest,
    WriteRequest,
)
from repro.errors import CJDBCError, ConfigurationError, RateLimitExceededError
from repro.planner.plan import SCATTER_GATHER

#: request categories flowed through the pipeline (string constants rather
#: than an Enum: identity comparison on interned strings is the hot path)
READ = "read"
WRITE = "write"
BATCH = "batch"
BEGIN = "begin"
COMMIT = "commit"
ROLLBACK = "rollback"

_CATEGORY_BY_TYPE = {
    RequestType.SELECT: READ,
    RequestType.WRITE: WRITE,
    RequestType.DDL: WRITE,
    RequestType.BEGIN: BEGIN,
    RequestType.COMMIT: COMMIT,
    RequestType.ROLLBACK: ROLLBACK,
}

#: fast path for the concrete request classes; subclasses fall back to the
#: request_type property lookup above
_CATEGORY_BY_CLASS = {
    SelectRequest: READ,
    WriteRequest: WRITE,
    BatchWriteRequest: BATCH,
    DDLRequest: WRITE,
    BeginRequest: BEGIN,
    CommitRequest: COMMIT,
    RollbackRequest: ROLLBACK,
}


class RequestContext:
    """Everything the pipeline knows about one in-flight request.

    The context is created by the request manager, threaded through every
    stage and interceptor, and read back for the final result.  Interceptors
    may stash private state in :attr:`data` (keyed by interceptor name).

    Construction is on the hottest path the controller has, so every field
    except the request itself defaults at class level and is only written
    when a stage actually sets it.
    """

    #: one of READ/WRITE/BEGIN/COMMIT/ROLLBACK, set by the classify stage
    category: Optional[str] = None
    result: Optional[RequestResult] = None
    error: Optional[BaseException] = None
    #: pipeline entry/exit clocks; 0.0 unless a timing interceptor is installed
    started_at: float = 0.0
    finished_at: float = 0.0
    #: scheduler ticket held while the request executes (schedule stage)
    ticket = None
    #: "hit" | "miss" | "bypass" — how the result cache saw this request
    cache_verdict: str = "bypass"
    backend_name: Optional[str] = None
    backends_executed: int = 0
    #: transaction id allocated for a BEGIN (reads/writes use request.transaction_id)
    transaction_id: Optional[int] = None
    #: id supplied by a distributed request manager for BEGIN (§4.1)
    requested_transaction_id: Optional[int] = None
    #: name of the stage or interceptor that ended execution early
    short_circuited_by: Optional[str] = None
    #: RoutePlan built by the plan stage (reads/writes/batches only)
    route_plan = None
    #: per-stage seconds, populated only when the pipeline is timed
    stage_timings: Optional[Dict[str, float]] = None
    _data: Optional[Dict[str, Any]] = None

    def __init__(self, request: AbstractRequest, manager=None):
        self.request = request
        self.manager = manager

    @property
    def data(self) -> Dict[str, Any]:
        """Scratch space for interceptors, keyed by interceptor name (lazy)."""
        scratch = self._data
        if scratch is None:
            scratch = self._data = {}
        return scratch

    @property
    def duration(self) -> float:
        """Wall-clock seconds from pipeline entry to completion."""
        return max(0.0, self.finished_at - self.started_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestContext({self.category or '?'}, {self.request!r},"
            f" cache={self.cache_verdict})"
        )


Handler = Callable[[RequestContext], None]


# ---------------------------------------------------------------------------
# stages
# ---------------------------------------------------------------------------


class Stage:
    """One step of the execution chain.

    A stage *compiles* into a handler closing over the request manager and
    the rest of the chain: work before ``proceed(context)`` happens on the
    way in (in stage order), work after it happens on the way out (in
    reverse order), and ``try/finally`` around ``proceed`` gives guaranteed
    cleanup.  Stages that keep no per-request state are shared by every
    request, so they must not store anything on ``self`` at run time.
    """

    name = "stage"

    def compile(self, manager, proceed: Handler) -> Handler:
        raise NotImplementedError


class ClassifyStage(Stage):
    """Derive the request category and validate transaction demarcation."""

    name = "classify"

    def compile(self, manager, proceed: Handler) -> Handler:
        def classify(context: RequestContext) -> None:
            request = context.request
            category = _CATEGORY_BY_CLASS.get(type(request))
            if category is None:
                category = _CATEGORY_BY_TYPE[request.request_type]
            context.category = category
            if category is COMMIT and request.transaction_id is None:
                raise CJDBCError("COMMIT outside of a transaction")
            if category is ROLLBACK and request.transaction_id is None:
                raise CJDBCError("ROLLBACK outside of a transaction")
            proceed(context)

        return classify


class AuthenticateStage(Stage):
    """Check the request's virtual login when authentication is enforced.

    The C-JDBC driver authenticates once, when the connection opens; this
    stage re-validates per request only when the pipeline was built with a
    non-transparent authentication manager, so middleware deployments that
    accept raw requests (no driver handshake) still reject unknown logins.
    """

    name = "authenticate"

    def __init__(self, authentication_manager=None):
        self.authentication_manager = authentication_manager

    def compile(self, manager, proceed: Handler) -> Handler:
        auth = self.authentication_manager
        if auth is None or getattr(auth, "transparent", True):
            return proceed

        def authenticate(context: RequestContext) -> None:
            login = context.request.login
            if login and login not in auth.virtual_logins:
                from repro.errors import AuthenticationError

                raise AuthenticationError(f"unknown virtual login {login!r}")
            proceed(context)

        return authenticate


class ScheduleStage(Stage):
    """Acquire the scheduler ticket; release it on *every* exit path."""

    name = "schedule"

    def compile(self, manager, proceed: Handler) -> Handler:
        def schedule(context: RequestContext) -> None:
            scheduler = manager.scheduler
            category = context.category
            if category is READ:
                ticket = scheduler.schedule_read(context.request)
            elif category is BEGIN and manager.lazy_transaction_begin:
                # lazy begin does no backend work: nothing to order (§2.4.4)
                ticket = None
            else:
                ticket = scheduler.schedule_write(context.request)
            context.ticket = ticket
            if ticket is None:
                proceed(context)
                return
            try:
                proceed(context)
            finally:
                ticket.release()

        return schedule


class CacheLookupStage(Stage):
    """Serve cacheable reads from the result cache; store misses."""

    name = "cache_lookup"

    def compile(self, manager, proceed: Handler) -> Handler:
        def cache_lookup(context: RequestContext) -> None:
            cache = manager.result_cache
            if (
                cache is None
                or context.category is not READ
                or context.request.transaction_id is not None
            ):
                proceed(context)
                return
            cached = cache.get(context.request)
            if cached is not None:
                context.cache_verdict = "hit"
                context.short_circuited_by = self.name
                context.result = cached
                return
            context.cache_verdict = "miss"
            proceed(context)
            if context.result is not None:
                # hand the client the same tuple-frozen row shape later
                # cache hits will see, never list rows on the miss only
                context.result = cache.put(context.request, context.result)

        return cache_lookup


class TransactionStage(Stage):
    """Controller-side transaction bookkeeping around demarcation requests."""

    name = "transaction"

    def compile(self, manager, proceed: Handler) -> Handler:
        def transaction(context: RequestContext) -> None:
            category = context.category
            if category is BEGIN:
                context.transaction_id = manager._register_transaction(
                    context.request.login, context.requested_transaction_id
                )
            elif category is COMMIT or category is ROLLBACK:
                manager._pop_transaction(context.request.transaction_id)
            proceed(context)

        return transaction


class RecoveryLogStage(Stage):
    """Record writes and demarcation in the recovery log before execution."""

    name = "recovery_log"

    def compile(self, manager, proceed: Handler) -> Handler:
        def recovery_log(context: RequestContext) -> None:
            log = manager.recovery_log
            if log is not None:
                category = context.category
                request = context.request
                if category is WRITE:
                    log.log_request(
                        request.sql,
                        request.parameters,
                        login=request.login,
                        transaction_id=request.transaction_id,
                    )
                elif category is BATCH:
                    # one replayable group entry for the whole batch: recovery
                    # re-executes it as a single server-side batch too
                    log.log_batch(
                        request.sql,
                        request.parameter_sets,
                        login=request.login,
                        transaction_id=request.transaction_id,
                    )
                elif category is BEGIN:
                    log.log_begin(request.login, context.transaction_id)
                elif category is COMMIT:
                    log.log_commit(request.login, request.transaction_id)
                elif category is ROLLBACK:
                    log.log_rollback(request.login, request.transaction_id)
            proceed(context)

        return recovery_log


class CacheInvalidateStage(Stage):
    """Invalidate result-cache entries after a successful write."""

    name = "cache_invalidate"

    def compile(self, manager, proceed: Handler) -> Handler:
        def cache_invalidate(context: RequestContext) -> None:
            proceed(context)
            cache = manager.result_cache
            if cache is not None and (
                context.category is WRITE or context.category is BATCH
            ):
                # for a batch this is ONE pass over the union of written
                # tables (request.tables), not one pass per parameter set
                cache.invalidate(context.request)

        return cache_invalidate


class PlanStage(Stage):
    """Build (or fetch from the template cache) the request's route plan.

    Runs only for the categories the planner routes — reads, writes and
    batches; transaction demarcation goes straight to the balancer.  Cache
    hits never reach this stage (the cache-lookup stage short-circuits
    above it), so warm-cache reads pay no planning cost at all.
    """

    name = "plan"

    def compile(self, manager, proceed: Handler) -> Handler:
        def plan(context: RequestContext) -> None:
            category = context.category
            if category is READ or category is WRITE or category is BATCH:
                planner = manager.planner
                if planner is not None:
                    context.route_plan = planner.plan_for_request(context.request)
            proceed(context)

        return plan


class LoadBalanceStage(Stage):
    """Terminal stage: execute on the backends through the load balancer."""

    name = "load_balance"

    def compile(self, manager, proceed: Handler) -> Handler:
        def load_balance(context: RequestContext) -> None:
            category = context.category
            if category is READ:
                plan = context.route_plan
                if plan is not None and plan.kind == SCATTER_GATHER:
                    result = manager.scatter_executor.execute(context.request, plan)
                else:
                    result = manager.load_balancer.execute_read_request(
                        context.request, manager._backends, plan
                    )
                manager._note_transaction_participant(context.request)
                context.backend_name = result.backend_name
                context.result = result
            elif category is WRITE:
                context.result = manager._execute_write_on_backends(context)
            elif category is BATCH:
                context.result = manager._execute_batch_on_backends(context)
            elif category is BEGIN:
                context.result = manager._execute_begin_on_backends(context)
            elif category is COMMIT:
                context.result = manager._execute_commit_on_backends(context)
            else:
                context.result = manager._execute_rollback_on_backends(context)

        return load_balance


#: default stage chain, in execution order
def default_stages(authentication_manager=None) -> List[Stage]:
    return [
        ClassifyStage(),
        AuthenticateStage(authentication_manager),
        ScheduleStage(),
        CacheLookupStage(),
        TransactionStage(),
        RecoveryLogStage(),
        CacheInvalidateStage(),
        PlanStage(),
        LoadBalanceStage(),
    ]


#: the stage composition eligible for read fast-path fusion (see below)
_DEFAULT_STAGE_CLASSES = (
    ClassifyStage,
    AuthenticateStage,
    ScheduleStage,
    CacheLookupStage,
    TransactionStage,
    RecoveryLogStage,
    CacheInvalidateStage,
    PlanStage,
    LoadBalanceStage,
)


def _compile_fused_read(manager, chain: Handler) -> Handler:
    """Fuse the default stages into one handler for plain SELECTs.

    Stage-by-stage dispatch costs a Python frame per stage — measurable on
    the cached-read hot path, the most frequent request shape a read-mostly
    cluster serves.  When the pipeline is exactly the default composition
    (checked by ``Pipeline._recompile``), this fusion executes the identical
    operations in the identical order with the identical context effects,
    without the per-stage frames; every other request type, and any
    customized pipeline, takes the general chain.  Behavioural equivalence
    between the two paths is pinned by tests (``test_pipeline.py``).
    """

    def fused_read(context: RequestContext) -> None:
        request = context.request
        if type(request) is not SelectRequest:
            chain(context)
            return
        # classify
        context.category = READ
        # schedule (ticket released on every path)
        ticket = manager.scheduler.schedule_read(request)
        context.ticket = ticket
        try:
            # cache lookup
            cache = manager.result_cache
            cacheable = cache is not None and request.transaction_id is None
            if cacheable:
                cached = cache.get(request)
                if cached is not None:
                    context.cache_verdict = "hit"
                    context.short_circuited_by = CacheLookupStage.name
                    context.result = cached
                    return
                context.cache_verdict = "miss"
            # plan
            plan = manager.planner.plan_for_request(request)
            context.route_plan = plan
            # load balance
            if plan.kind == SCATTER_GATHER:
                result = manager.scatter_executor.execute(request, plan)
            else:
                result = manager.load_balancer.execute_read_request(
                    request, manager._backends, plan
                )
            manager._note_transaction_participant(request)
            context.backend_name = result.backend_name
            if cacheable:
                result = cache.put(request, result)
            context.result = result
        finally:
            ticket.release()

    return fused_read


# ---------------------------------------------------------------------------
# interceptors
# ---------------------------------------------------------------------------


class Interceptor:
    """A cross-cutting hook wrapped around the whole stage chain.

    ``before`` runs on the way in (interceptor order); returning a
    :class:`RequestResult` short-circuits everything below, and raising
    rejects the request.  ``after`` runs on the way out in reverse order,
    whatever happened below — success, cache short-circuit or error (the
    error, if any, is on ``context.error``) — for every interceptor *at or
    before the one that ended execution*: when an interceptor's ``before``
    rejects or short-circuits, interceptors positioned after it were never
    entered and their ``after`` hooks are skipped, exactly like stages below
    a short-circuit (so order interceptors that must see every request,
    e.g. audit, before gating ones like ``rate_limit``).  Set
    :attr:`needs_timing` to make the pipeline stamp
    ``context.started_at``/``finished_at`` (so ``context.duration`` is
    meaningful), and :attr:`needs_stage_timings` to additionally record
    per-stage durations in ``context.stage_timings``.
    """

    name = "interceptor"
    #: request True to get wall-clock stamps on the context (duration)
    needs_timing = False
    #: request True to additionally get per-stage timings (implies timing)
    needs_stage_timings = False

    def before(self, context: RequestContext) -> Optional[RequestResult]:
        return None

    def after(self, context: RequestContext) -> None:
        return None

    def statistics(self) -> dict:
        return {}


class MetricsInterceptor(Interceptor):
    """Per-request-type counters: the controller's primary request metrics.

    Replaces the old single ``requests_executed`` counter with a breakdown
    by category plus cache hits and errors; totals are derived, never
    double-counted.

    The counters are *thread-striped*: each thread increments its own
    per-thread dict (no lock, no contention on the hot path) and readers
    sum the stripes under a lock, so counts stay exact under concurrency
    without taxing every request.  A dead thread's stripe is folded into a
    base counter when its Thread object is collected, so thread churn does
    not grow the stripe list without bound.
    """

    name = "metrics"

    _COUNTER_BY_CATEGORY = {
        READ: "reads",
        WRITE: "writes",
        BATCH: "batches",
        BEGIN: "begins",
        COMMIT: "commits",
        ROLLBACK: "rollbacks",
    }
    _FIELDS = (
        "reads",
        "writes",
        "batches",
        "begins",
        "commits",
        "rollbacks",
        #: requests served by an interceptor's before-hook short-circuit,
        #: never classified into a category (still part of the total)
        "intercepted",
        "cache_hits",
        "errors",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        #: every live stripe, appended once per thread under the lock
        self._stripes: List[Dict[str, int]] = []
        #: totals folded in from threads that have since died
        self._retired: Dict[str, int] = {field: 0 for field in self._FIELDS}

    def _stripe(self) -> Dict[str, int]:
        try:
            return self._local.counters
        except AttributeError:
            stripe = {field: 0 for field in self._FIELDS}
            with self._lock:
                self._stripes.append(stripe)
            self._local.counters = stripe
            weakref.finalize(threading.current_thread(), self._retire_stripe, stripe)
            return stripe

    def _retire_stripe(self, stripe: Dict[str, int]) -> None:
        """Fold a dead thread's stripe into the retired totals."""
        with self._lock:
            try:
                self._stripes.remove(stripe)
            except ValueError:
                return
            for field in self._FIELDS:
                self._retired[field] += stripe[field]

    def after(self, context: RequestContext) -> None:
        try:
            counters = self._local.counters
        except AttributeError:
            counters = self._stripe()
        counter = self._COUNTER_BY_CATEGORY.get(context.category)
        if counter is not None:
            counters[counter] += 1
        elif context.error is None:
            # served by an interceptor before classification could run
            counters["intercepted"] += 1
        if context.cache_verdict == "hit":
            counters["cache_hits"] += 1
        if context.error is not None:
            counters["errors"] += 1

    @property
    def counters(self) -> Dict[str, int]:
        """Aggregated view over every thread's stripe plus retired totals."""
        with self._lock:
            totals = dict(self._retired)
            stripes = list(self._stripes)
        for stripe in stripes:
            for field in self._FIELDS:
                totals[field] += stripe[field]
        return totals

    _TOTAL_FIELDS = (
        "reads",
        "writes",
        "batches",
        "begins",
        "commits",
        "rollbacks",
        "intercepted",
    )

    @property
    def total_requests(self) -> int:
        counters = self.counters
        return sum(counters[field] for field in self._TOTAL_FIELDS)

    def statistics(self) -> dict:
        stats = self.counters
        stats["total"] = sum(stats[field] for field in self._TOTAL_FIELDS)
        return stats


class TracingInterceptor(Interceptor):
    """Record a span per request (category, SQL, per-stage timings, outcome).

    Spans land in a bounded ring buffer for the admin console and tests; the
    pipeline switches on per-stage timing collection when this interceptor
    is installed.
    """

    name = "tracing"
    needs_timing = True
    needs_stage_timings = True

    def __init__(self, max_traces: int = 128):
        if max_traces < 1:
            raise ConfigurationError("tracing: max_traces must be >= 1")
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=max_traces)
        self.traces_recorded = 0

    def after(self, context: RequestContext) -> None:
        span = {
            "category": context.category,
            "sql": context.request.sql,
            "duration_ms": round(context.duration * 1000.0, 3),
            "cache": context.cache_verdict,
            "backend": context.backend_name,
            "stages": {
                name: round(seconds * 1000.0, 3)
                for name, seconds in (context.stage_timings or {}).items()
            },
            "error": type(context.error).__name__ if context.error else None,
        }
        with self._lock:
            self._traces.append(span)
            self.traces_recorded += 1

    def traces(self) -> List[dict]:
        with self._lock:
            return list(self._traces)

    def statistics(self) -> dict:
        with self._lock:
            return {
                "traces_recorded": self.traces_recorded,
                "traces_kept": len(self._traces),
                "max_traces": self.max_traces,
            }


class SlowQueryLogInterceptor(Interceptor):
    """Keep the slowest offenders: every request over a latency threshold."""

    name = "slow_query_log"
    needs_timing = True

    def __init__(self, threshold_ms: float = 100.0, max_entries: int = 64):
        if threshold_ms < 0:
            raise ConfigurationError("slow_query_log: threshold_ms must be >= 0")
        if max_entries < 1:
            raise ConfigurationError("slow_query_log: max_entries must be >= 1")
        self.threshold_seconds = threshold_ms / 1000.0
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=max_entries)
        self.slow_queries = 0

    def after(self, context: RequestContext) -> None:
        duration = context.duration
        if duration < self.threshold_seconds:
            return
        entry = {
            "sql": context.request.sql,
            "category": context.category,
            "duration_ms": round(duration * 1000.0, 3),
            "cache": context.cache_verdict,
            "login": context.request.login,
        }
        with self._lock:
            self._entries.append(entry)
            self.slow_queries += 1

    def entries(self) -> List[dict]:
        with self._lock:
            return list(self._entries)

    def statistics(self) -> dict:
        with self._lock:
            return {
                "threshold_ms": round(self.threshold_seconds * 1000.0, 3),
                "slow_queries": self.slow_queries,
                "entries_kept": len(self._entries),
            }


class RateLimitInterceptor(Interceptor):
    """Reject logins exceeding a sliding-window request budget.

    Admission control at the controller door: each login (or the whole
    virtual database with ``per_login=False``) gets ``max_requests`` per
    ``window_seconds``; excess requests are rejected with
    :class:`repro.errors.RateLimitExceededError` before they reach the
    scheduler, so an abusive client cannot queue work.
    """

    name = "rate_limit"

    def __init__(
        self,
        max_requests: int = 1000,
        window_seconds: float = 1.0,
        per_login: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_requests < 1:
            raise ConfigurationError("rate_limit: max_requests must be >= 1")
        if window_seconds <= 0:
            raise ConfigurationError("rate_limit: window_seconds must be > 0")
        self.max_requests = max_requests
        self.window_seconds = float(window_seconds)
        self.per_login = per_login
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        #: login -> deque of request timestamps inside the current window
        self._windows: Dict[str, deque] = {}
        #: requests until the next sweep of idle logins' windows
        self._sweep_countdown = self._SWEEP_EVERY
        self.allowed = 0
        self.rejected = 0

    #: amortized cleanup period: with per-login windows and clients that
    #: rotate login names, windows of idle logins would otherwise accumulate
    #: forever; every N admissions, fully-expired windows are dropped
    _SWEEP_EVERY = 1024

    def before(self, context: RequestContext) -> Optional[RequestResult]:
        request = context.request
        # demarcation of already-admitted work is never gated: a client over
        # budget must still be able to commit or roll back its transaction
        # (blocking those would strand backend transactions for the window)
        if isinstance(request, (CommitRequest, RollbackRequest)):
            return None
        key = request.login if self.per_login else "*"
        now = self._clock()
        horizon = now - self.window_seconds
        with self._lock:
            self._sweep_countdown -= 1
            if self._sweep_countdown <= 0:
                self._sweep_countdown = self._SWEEP_EVERY
                for login in [
                    login
                    for login, window in self._windows.items()
                    if not window or window[-1] <= horizon
                ]:
                    if login != key:
                        del self._windows[login]
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = deque()
            while window and window[0] <= horizon:
                window.popleft()
            if len(window) >= self.max_requests:
                self.rejected += 1
                raise RateLimitExceededError(
                    f"login {key!r} exceeded {self.max_requests} requests"
                    f" per {self.window_seconds:g}s"
                )
            window.append(now)
            self.allowed += 1
        return None

    def statistics(self) -> dict:
        with self._lock:
            return {
                "max_requests": self.max_requests,
                "window_seconds": self.window_seconds,
                "per_login": self.per_login,
                "allowed": self.allowed,
                "rejected": self.rejected,
                "active_logins": len(self._windows),
            }


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------


class Pipeline:
    """An ordered stage chain wrapped by an ordered interceptor list."""

    def __init__(
        self,
        manager,
        stages: Optional[Sequence[Stage]] = None,
        interceptors: Sequence[Interceptor] = (),
    ):
        self._manager = manager
        self.stages: List[Stage] = list(stages) if stages is not None else default_stages()
        self._interceptors: List[Interceptor] = []
        self._lock = threading.Lock()
        self._chain: Handler = _noop_handler
        self._timed = False
        self.requests_started = 0
        for interceptor in interceptors:
            _check_interceptor(interceptor)
            self._check_duplicate_name(interceptor)
            self._interceptors.append(interceptor)
        self._recompile()

    # -- composition ---------------------------------------------------------------

    @property
    def interceptors(self) -> List[Interceptor]:
        with self._lock:
            return list(self._interceptors)

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    @property
    def interceptor_names(self) -> List[str]:
        return [interceptor.name for interceptor in self.interceptors]

    def interceptor(self, name: str) -> Interceptor:
        for interceptor in self.interceptors:
            if interceptor.name == name:
                return interceptor
        known = ", ".join(self.interceptor_names) or "none installed"
        raise ConfigurationError(f"no interceptor {name!r} in pipeline ({known})")

    def has_interceptor(self, name: str) -> bool:
        return any(i.name == name for i in self.interceptors)

    def _check_duplicate_name(self, interceptor: Interceptor) -> None:
        if any(existing.name == interceptor.name for existing in self._interceptors):
            raise ConfigurationError(
                f"an interceptor named {interceptor.name!r} is already installed"
                f" (names identify interceptors for lookup and removal)"
            )

    def add_interceptor(self, interceptor: Interceptor, index: Optional[int] = None) -> None:
        _check_interceptor(interceptor)
        with self._lock:
            self._check_duplicate_name(interceptor)
            if index is None:
                self._interceptors.append(interceptor)
            else:
                self._interceptors.insert(index, interceptor)
        self._recompile()

    def remove_interceptor(self, name: str) -> Interceptor:
        with self._lock:
            for index, interceptor in enumerate(self._interceptors):
                if interceptor.name == name:
                    if interceptor is getattr(self._manager, "metrics", None):
                        raise ConfigurationError(
                            "the metrics interceptor is built in and cannot be"
                            " removed (requests_executed and statistics depend"
                            " on it)"
                        )
                    del self._interceptors[index]
                    break
            else:
                known = ", ".join(i.name for i in self._interceptors) or "none installed"
                raise ConfigurationError(
                    f"no interceptor {name!r} in pipeline ({known})"
                )
        self._recompile()
        return interceptor

    def _fusable(self) -> bool:
        """True when the read fast path may be fused (default composition).

        Fusion is disabled as soon as anything observable differs from the
        default chain: reordered/custom/extra stages, per-stage timing, or
        an enforcing authentication manager (its per-request check applies
        to reads too).  Callers hold ``self._lock``.
        """
        if self._timed or len(self.stages) != len(_DEFAULT_STAGE_CLASSES):
            return False
        for stage, expected in zip(self.stages, _DEFAULT_STAGE_CLASSES):
            if type(stage) is not expected:
                return False
        # same default as AuthenticateStage.compile: a manager without a
        # `transparent` attribute compiles to a pass-through, so it must not
        # disable the fusion either
        authentication_manager = self.stages[1].authentication_manager
        return authentication_manager is None or getattr(
            authentication_manager, "transparent", True
        )

    def use_authentication_manager(self, authentication_manager) -> None:
        """Point the authenticate stage at a (possibly enforcing) manager."""
        for stage in self.stages:
            if isinstance(stage, AuthenticateStage):
                stage.authentication_manager = authentication_manager
        self._recompile()

    def _recompile(self) -> None:
        """Rebuild the compiled handler chain and interceptor hook tables.

        Hooks are filtered at compile time — an interceptor that does not
        override ``before`` (or ``after``) costs nothing per request — and
        wall clocks are only read when some interceptor asked for timing.
        """
        with self._lock:
            interceptors = self._interceptors
            self._clocked = any(
                i.needs_timing or i.needs_stage_timings for i in interceptors
            )
            self._timed = any(i.needs_stage_timings for i in interceptors)
            handler: Handler = _noop_handler
            for stage in reversed(self.stages):
                handler = stage.compile(self._manager, handler)
                if self._timed:
                    handler = _timed_handler(stage.name, handler)
            if self._fusable():
                handler = _compile_fused_read(self._manager, handler)
            self._chain = handler
            #: (position, name, bound hook) for interceptors overriding before
            self._befores = tuple(
                (position, interceptor.name, interceptor.before)
                for position, interceptor in enumerate(interceptors)
                if type(interceptor).before is not Interceptor.before
            )
            #: (position, bound hook) in reverse order for overridden afters
            self._afters = tuple(
                (position, interceptor.after)
                for position, interceptor in reversed(list(enumerate(interceptors)))
                if type(interceptor).after is not Interceptor.after
            )
            self._barrier = len(interceptors)
            # one atomically-swapped snapshot of everything execute() needs:
            # an in-flight request must never see a half-recompiled mixture
            # of old and new hook tables when interceptors change at runtime
            self._compiled = (
                self._clocked,
                self._timed,
                self._chain,
                self._befores,
                self._afters,
                self._barrier,
            )

    # -- execution -----------------------------------------------------------------

    def execute(self, context: RequestContext) -> RequestContext:
        """Run one request through interceptors and stages.

        Interceptor ``before`` hooks run in order (any may short-circuit by
        returning a result, or reject by raising); the stage chain runs
        next; ``after`` hooks then run in reverse order whatever happened —
        for every interceptor whose ``before`` was reached — and the error,
        if any, is on the context and propagates after the last hook.
        """
        clocked, timed, chain, befores, afters, full_barrier = self._compiled
        if clocked:
            context.started_at = time.perf_counter()
            if timed:
                context.stage_timings = {}
        # monitoring aid only: unsynchronized, may undercount under
        # concurrency (the exact counters live on the metrics interceptor)
        self.requests_started += 1
        # afters run for interceptor positions <= barrier: everything when
        # the chain is reached, only the attempted prefix when a before
        # raises or short-circuits
        barrier = full_barrier
        try:
            for position, name, before in befores:
                barrier = position
                early = before(context)
                if early is not None:
                    context.result = early
                    context.short_circuited_by = name
                    return context
            barrier = full_barrier
            chain(context)
            return context
        except BaseException as exc:
            context.error = exc
            raise
        finally:
            if clocked:
                context.finished_at = time.perf_counter()
            hook_error: Optional[BaseException] = None
            for position, after in afters:
                if position > barrier:
                    continue
                try:
                    after(context)
                except BaseException as exc:  # noqa: BLE001 - isolated per hook
                    if hook_error is None:
                        hook_error = exc
            # a failing hook must not mask the request's own error, and must
            # not stop outer hooks; re-raise only on an otherwise-clean request
            if hook_error is not None and context.error is None:
                raise hook_error

    # -- monitoring ----------------------------------------------------------------

    def statistics(self) -> dict:
        return {
            "stages": self.stage_names,
            "requests_started": self.requests_started,
            "interceptors": {
                interceptor.name: interceptor.statistics()
                for interceptor in self.interceptors
            },
        }


def _noop_handler(context: RequestContext) -> None:
    return None


def _timed_handler(name: str, handler: Handler) -> Handler:
    def timed(context: RequestContext) -> None:
        start = time.perf_counter()
        try:
            handler(context)
        finally:
            timings = context.stage_timings
            if timings is not None:
                # inclusive span: time from stage entry to exit, inner stages
                # included (the nesting mirrors the chain structure)
                timings[name] = time.perf_counter() - start

    return timed


def _check_interceptor(interceptor: Interceptor) -> Interceptor:
    if not isinstance(interceptor, Interceptor):
        raise ConfigurationError(
            f"expected an Interceptor instance, got {type(interceptor).__name__}"
        )
    return interceptor


# ---------------------------------------------------------------------------
# declarative interceptor construction (descriptor `interceptors:` section)
# ---------------------------------------------------------------------------

#: name -> (constructor, allowed option keys)
BUILTIN_INTERCEPTORS: Dict[str, Tuple[Callable[..., Interceptor], frozenset]] = {
    "metrics": (MetricsInterceptor, frozenset()),
    "tracing": (TracingInterceptor, frozenset({"max_traces"})),
    "slow_query_log": (
        SlowQueryLogInterceptor,
        frozenset({"threshold_ms", "max_entries"}),
    ),
    "rate_limit": (
        RateLimitInterceptor,
        frozenset({"max_requests", "window_seconds", "per_login"}),
    ),
}

InterceptorSpec = Union[str, Mapping, Interceptor]


def build_interceptor(spec: InterceptorSpec, where: str = "interceptors") -> Interceptor:
    """Materialize one interceptor from a descriptor entry.

    Accepts a bare built-in name (``"tracing"``), a mapping with a ``name``
    and options (``{"name": "slow_query_log", "threshold_ms": 50}``) or an
    already-constructed :class:`Interceptor` (programmatic configs).  Raises
    :class:`ConfigurationError` naming ``where`` for unknown names, unknown
    options and bad option values.
    """
    if isinstance(spec, Interceptor):
        return spec
    if isinstance(spec, str):
        name, options = spec, {}
    elif isinstance(spec, Mapping):
        options = dict(spec)
        name = options.pop("name", None)
        if not isinstance(name, str) or not name.strip():
            raise ConfigurationError(
                f"{where}: an interceptor mapping needs a non-empty 'name' key"
            )
    else:
        raise ConfigurationError(
            f"{where}: expected an interceptor name or mapping,"
            f" got {type(spec).__name__}"
        )
    builder = BUILTIN_INTERCEPTORS.get(name.lower())
    if builder is None:
        known = ", ".join(sorted(BUILTIN_INTERCEPTORS))
        raise ConfigurationError(
            f"{where}: unknown interceptor {name!r} (built-ins: {known})"
        )
    constructor, allowed = builder
    unknown = sorted(set(options) - allowed)
    if unknown:
        expected = ", ".join(sorted(allowed)) or "no options"
        raise ConfigurationError(
            f"{where}.{name}: unknown option{'s' if len(unknown) > 1 else ''}"
            f" {', '.join(map(repr, unknown))} (expected: {expected})"
        )
    try:
        return constructor(**options)
    except TypeError as exc:
        raise ConfigurationError(f"{where}.{name}: {exc}") from exc


def build_interceptors(
    specs: Sequence[InterceptorSpec], where: str = "interceptors"
) -> List[Interceptor]:
    """Materialize a whole ``interceptors:`` list, pinpointing bad entries."""
    interceptors = []
    for index, spec in enumerate(specs):
        interceptors.append(build_interceptor(spec, where=f"{where}[{index}]"))
    return interceptors


__all__ = [
    "BUILTIN_INTERCEPTORS",
    "AuthenticateStage",
    "CacheInvalidateStage",
    "CacheLookupStage",
    "ClassifyStage",
    "Interceptor",
    "InterceptorSpec",
    "LoadBalanceStage",
    "MetricsInterceptor",
    "Pipeline",
    "PlanStage",
    "RateLimitInterceptor",
    "RequestContext",
    "RecoveryLogStage",
    "ScheduleStage",
    "SlowQueryLogInterceptor",
    "Stage",
    "TracingInterceptor",
    "TransactionStage",
    "build_interceptor",
    "build_interceptors",
    "default_stages",
]
